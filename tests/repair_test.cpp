#include <gtest/gtest.h>

#include "apps/render.h"
#include "clustering/engine.h"
#include "repair/sandbox.h"
#include "repair/search.h"
#include "repair/user_model.h"
#include "repair/versions.h"

namespace ocasta {
namespace {

// ----- Sandbox ------------------------------------------------------------------------

TEST(Sandbox, OverlaysWithoutTouchingBase) {
  const ConfigMap base{{"a", Value(1)}, {"b", Value(2)}};
  SandboxStore sandbox(base, StoreKind::kGconf);
  EXPECT_EQ(sandbox.Read("a"), Value(1));
  sandbox.Write("a", Value(99));
  sandbox.Write("c", Value(3));
  sandbox.Remove("b");
  EXPECT_EQ(sandbox.Read("a"), Value(99));
  EXPECT_EQ(sandbox.Read("b"), std::nullopt);
  EXPECT_EQ(sandbox.Read("c"), Value(3));
  // Snapshot merges; base map captured at construction stays intact.
  const ConfigMap merged = sandbox.Snapshot();
  EXPECT_EQ(merged.at("a"), Value(99));
  EXPECT_EQ(merged.count("b"), 0u);
  sandbox.Reset();
  EXPECT_EQ(sandbox.Read("a"), Value(1));
  EXPECT_EQ(sandbox.Read("b"), Value(2));
  EXPECT_EQ(sandbox.Read("c"), std::nullopt);
}

TEST(Sandbox, RemoveThenRewrite) {
  SandboxStore sandbox({{"k", Value(1)}}, StoreKind::kGconf);
  EXPECT_TRUE(sandbox.Remove("k"));
  EXPECT_FALSE(sandbox.Remove("k"));
  sandbox.Write("k", Value(2));
  EXPECT_EQ(sandbox.Read("k"), Value(2));
}

TEST(Sandbox, ListKeysMergesOverlayAndBase) {
  SandboxStore sandbox({{"a/1", Value(1)}, {"a/2", Value(2)}, {"b/1", Value(3)}},
                       StoreKind::kGconf);
  sandbox.Write("a/3", Value(4));
  sandbox.Remove("a/2");
  EXPECT_EQ(sandbox.ListKeys("a/"), (std::vector<std::string>{"a/1", "a/3"}));
  EXPECT_EQ(sandbox.ListKeys("").size(), 3u);
}

TEST(Sandbox, RestoreSnapshotReplacesEverything) {
  SandboxStore sandbox({{"a", Value(1)}, {"b", Value(2)}}, StoreKind::kGconf);
  sandbox.RestoreSnapshot({{"c", Value(3)}});
  EXPECT_EQ(sandbox.Read("a"), std::nullopt);
  EXPECT_EQ(sandbox.Read("b"), std::nullopt);
  EXPECT_EQ(sandbox.Read("c"), Value(3));
}

// ----- Cluster versions ------------------------------------------------------------------

TTKV HistoryFixture() {
  TTKV ttkv;
  // Cluster {a, b}: changes at 100 s (burst 100/100.4), 200 s, 300 s.
  ttkv.record_write("a", Value(1), Seconds(100));
  ttkv.record_write("b", Value(10), Seconds(100));
  ttkv.record_write("a", Value(2), Seconds(200));
  ttkv.record_write("b", Value(20), Seconds(200));
  ttkv.record_write("a", Value(3), Seconds(300));
  ttkv.record_write("b", Value(30), Seconds(300));
  return ttkv;
}

KeyCluster ClusterAB(const TTKV& ttkv) {
  KeyCluster cluster;
  cluster.keys = {ttkv.key_id("a"), ttkv.key_id("b")};
  return cluster;
}

TEST(ClusterVersions, NewestFirstWithinBounds) {
  const TTKV ttkv = HistoryFixture();
  const auto versions =
      ClusterVersions(ttkv, ClusterAB(ttkv), 0, Seconds(10000), Seconds(1));
  ASSERT_EQ(versions.size(), 3u);
  EXPECT_EQ(versions[0].change_time, Seconds(300));
  EXPECT_EQ(versions[2].change_time, Seconds(100));

  const auto bounded =
      ClusterVersions(ttkv, ClusterAB(ttkv), Seconds(150), Seconds(250), Seconds(1));
  ASSERT_EQ(bounded.size(), 1u);
  EXPECT_EQ(bounded[0].change_time, Seconds(200));
}

TEST(ClusterVersions, WindowCollapsesBursts) {
  TTKV ttkv;
  ttkv.record_write("a", Value(1), Seconds(100));
  ttkv.record_write("b", Value(1), Seconds(101));  // Same burst at 1 s window.
  ttkv.record_write("a", Value(2), Seconds(105));
  const KeyCluster cluster{.keys = {0, 1}};
  EXPECT_EQ(ClusterVersions(ttkv, cluster, 0, Seconds(1000), Seconds(1)).size(), 2u);
  EXPECT_EQ(ClusterVersions(ttkv, cluster, 0, Seconds(1000), 0).size(), 3u);
}

TEST(MaterializeBefore, ReconstructsStateBeforeChange) {
  const TTKV ttkv = HistoryFixture();
  std::vector<std::string> absent;
  const ConfigMap state = MaterializeBefore(ttkv, ClusterAB(ttkv), Seconds(300), &absent);
  EXPECT_EQ(state.at("a"), Value(2));
  EXPECT_EQ(state.at("b"), Value(20));
  EXPECT_TRUE(absent.empty());

  // Before the first change, neither key existed.
  absent.clear();
  const ConfigMap initial = MaterializeBefore(ttkv, ClusterAB(ttkv), Seconds(100), &absent);
  EXPECT_TRUE(initial.empty());
  EXPECT_EQ(absent.size(), 2u);
}

TEST(MaterializeBefore, RespectsTombstones) {
  TTKV ttkv;
  ttkv.record_write("k", Value(1), Seconds(10));
  ttkv.record_delete("k", Seconds(20));
  ttkv.record_write("k", Value(2), Seconds(30));
  KeyCluster cluster{.keys = {0}};
  std::vector<std::string> absent;
  const ConfigMap state = MaterializeBefore(ttkv, cluster, Seconds(30), &absent);
  EXPECT_TRUE(state.empty());  // Deleted just before 30 s.
  EXPECT_EQ(absent, std::vector<std::string>{"k"});
}

TEST(ApplyRollback, WritesAndDeletes) {
  SandboxStore sandbox({{"a", Value(9)}, {"gone", Value(1)}}, StoreKind::kGconf);
  ApplyRollback(sandbox, {{"a", Value(1)}, {"b", Value(2)}}, {"gone"});
  EXPECT_EQ(sandbox.Read("a"), Value(1));
  EXPECT_EQ(sandbox.Read("b"), Value(2));
  EXPECT_EQ(sandbox.Read("gone"), std::nullopt);
}

// ----- Search ---------------------------------------------------------------------------------

// Fixture: two keys always modified together; key "a" corrupted at 400 s.
// The oracle wants a = 3 (its value before the corruption).
struct SearchFixture {
  TTKV ttkv = HistoryFixture();
  ClusterSet clusters;
  ConfigMap current;
  Trial trial;
  RequiredKeyOracle oracle{{{"a", "3"}}};

  SearchFixture() {
    ttkv.record_write("a", Value(666), Seconds(400));  // The injected error.
    // Independent noisy key, modified often: sorted last by the recovery
    // order, so the offending cluster is tried first.
    for (int i = 0; i < 10; ++i) {
      ttkv.record_write("noise", Value(i), Seconds(500 + i * 10));
    }
    ClusteringParams params;
    clusters = ClusterKeys(ttkv, params);
    current = ConfigMap{{"a", Value(666)}, {"b", Value(30)}, {"noise", Value(9)}};
    trial = Trial{"App", [](ConfigStore& store) {
                    std::string text;
                    const auto a = store.Read("a");
                    const auto b = store.Read("b");
                    text += "a = " + (a ? a->ToDisplay() : "<unset>") + "\n";
                    text += "b = " + (b ? b->ToDisplay() : "<unset>") + "\n";
                    return Screenshot::FromText(text);
                  }};
  }
};

TEST(RepairSearch, DfsFindsTheFix) {
  SearchFixture f;
  RepairController controller(f.ttkv, f.clusters, f.current, StoreKind::kGconf, f.trial,
                              f.oracle);
  RepairConfig config;
  const RepairOutcome outcome = controller.Run(config);
  EXPECT_TRUE(outcome.fixed);
  EXPECT_EQ(outcome.fixed_state.at("a"), Value(3));
  EXPECT_GT(outcome.total_trials, 0u);
  EXPECT_LE(outcome.trials_to_fix, outcome.total_trials);
  EXPECT_EQ(outcome.time_to_fix,
            static_cast<TimeMicros>(outcome.trials_to_fix) * config.cost.per_trial());
}

TEST(RepairSearch, BfsFindsTheFixToo) {
  SearchFixture f;
  RepairController controller(f.ttkv, f.clusters, f.current, StoreKind::kGconf, f.trial,
                              f.oracle);
  RepairConfig config;
  config.strategy = SearchStrategy::kBfs;
  EXPECT_TRUE(controller.Run(config).fixed);
}

TEST(RepairSearch, StopAtFixShortens) {
  SearchFixture f;
  RepairController controller(f.ttkv, f.clusters, f.current, StoreKind::kGconf, f.trial,
                              f.oracle);
  RepairConfig config;
  config.stop_at_fix = true;
  const RepairOutcome outcome = controller.Run(config);
  EXPECT_TRUE(outcome.fixed);
  EXPECT_EQ(outcome.total_trials, outcome.trials_to_fix);
}

TEST(RepairSearch, StartBoundExcludesTheFix) {
  SearchFixture f;
  RepairController controller(f.ttkv, f.clusters, f.current, StoreKind::kGconf, f.trial,
                              f.oracle);
  RepairConfig config;
  config.start_time = Seconds(500);  // The corrupting write at 400 s is out of range.
  const RepairOutcome outcome = controller.Run(config);
  EXPECT_FALSE(outcome.fixed);
}

TEST(RepairSearch, EndBoundSkipsSpuriousTail) {
  // The user's end bound ("roughly when the error was first discovered")
  // prunes their own later fix attempts from the search.
  SearchFixture f;
  f.ttkv.record_write("a", Value(667), Seconds(2000));  // A failed fix attempt.
  ClusteringParams params;
  f.clusters = ClusterKeys(f.ttkv, params);
  f.current["a"] = Value(667);
  RepairController controller(f.ttkv, f.clusters, f.current, StoreKind::kGconf, f.trial,
                              f.oracle);
  RepairConfig unbounded;
  RepairConfig bounded;
  bounded.end_time = Seconds(1000);  // Before the spurious write.
  const RepairOutcome slow = controller.Run(unbounded);
  const RepairOutcome fast = controller.Run(bounded);
  EXPECT_TRUE(slow.fixed);
  EXPECT_TRUE(fast.fixed);
  EXPECT_LT(fast.total_trials, slow.total_trials);
}

TEST(RepairSearch, ScreenshotsDeduplicated) {
  SearchFixture f;
  RepairController controller(f.ttkv, f.clusters, f.current, StoreKind::kGconf, f.trial,
                              f.oracle);
  const RepairOutcome outcome = controller.Run(RepairConfig{});
  // The noise cluster renders identically to the erroneous screenshot
  // (its key is invisible), so unique screenshots stay small.
  EXPECT_LT(outcome.unique_screenshots, outcome.total_trials);
  EXPECT_GE(outcome.unique_screenshots, 1u);
}

TEST(RepairSearch, NoClustCannotFixMultiKeyError) {
  // Corrupt BOTH a and b; the oracle needs both restored together.
  SearchFixture f;
  f.ttkv = HistoryFixture();
  f.ttkv.record_write("a", Value(666), Seconds(400));
  f.ttkv.record_write("b", Value(777), Seconds(400));
  ClusteringParams params;
  f.clusters = ClusterKeys(f.ttkv, params);
  f.current = ConfigMap{{"a", Value(666)}, {"b", Value(777)}};
  const RequiredKeyOracle oracle({{"a", "3"}, {"b", "30"}});

  RepairController with_clusters(f.ttkv, f.clusters, f.current, StoreKind::kGconf, f.trial,
                                 oracle);
  EXPECT_TRUE(with_clusters.Run(RepairConfig{}).fixed);

  const ClusterSet singles = SingletonClusters(f.ttkv);
  RepairController no_clusters(f.ttkv, singles, f.current, StoreKind::kGconf, f.trial, oracle);
  EXPECT_FALSE(no_clusters.Run(RepairConfig{}).fixed);
}

TEST(SingletonClusters, OnePerModifiedKey) {
  TTKV ttkv;
  ttkv.record_write("a", Value(1), 0);
  ttkv.record_write("a", Value(2), Seconds(1));
  ttkv.record_write("b", Value(1), 0);
  ttkv.record_reads("readonly", 5);
  const ClusterSet singles = SingletonClusters(ttkv);
  ASSERT_EQ(singles.size(), 2u);
  EXPECT_EQ(singles.multi_cluster_count(), 0u);
  EXPECT_EQ(singles.cluster(0).version_count, 2u);
}

TEST(RemapClusters, CarriesClustersOntoExtendedHistory) {
  TTKV clean = HistoryFixture();
  TTKV full = HistoryFixture();
  full.record_write("a", Value(666), Seconds(400));  // Injection.
  full.record_write("new_key", Value(1), Seconds(450));

  const ClusterSet clean_clusters = ClusterKeys(clean, ClusteringParams{});
  ASSERT_EQ(clean_clusters.multi_cluster_count(), 1u);
  const ClusterSet remapped = RemapClusters(clean_clusters, clean, full, 1.0);

  // The {a, b} cluster survives even though the lone injected write would
  // have diluted its correlation below 2.
  EXPECT_EQ(remapped.cluster_of(full.key_id("a")), remapped.cluster_of(full.key_id("b")));
  // Keys only modified post-injection become singletons.
  EXPECT_NE(remapped.cluster_of(full.key_id("new_key")), ClusterSet::kNoCluster);
  // Version counts reflect the full history (3 changes + injection).
  const uint32_t c = remapped.cluster_of(full.key_id("a"));
  EXPECT_EQ(remapped.cluster(c).version_count, 4u);
}

TEST(RequiredKeyOracle, MatchesRenderedLines) {
  const RequiredKeyOracle oracle(
      std::vector<RequiredKeyOracle::Requirement>{{"k", "true"}});
  EXPECT_TRUE(oracle.LooksFixed(Screenshot::FromText("k = true\n")));
  EXPECT_FALSE(oracle.LooksFixed(Screenshot::FromText("k = false\n")));
  EXPECT_FALSE(oracle.LooksFixed(Screenshot::FromText("k = truer\n")));
}

// ----- User model -------------------------------------------------------------------------------

TEST(UserModel, NineteenParticipantsSixNonTechnical) {
  const auto participants = StudyParticipants(1);
  ASSERT_EQ(participants.size(), 19u);
  int non_technical = 0;
  for (const auto& participant : participants) non_technical += !participant.technical;
  EXPECT_EQ(non_technical, 6);
}

TEST(UserModel, ManualFailureHitsCutoff) {
  Rng rng(3);
  UserStudyErrorParams error;
  error.manual_fix_prob = 0.0;
  const auto outcome = SimulateParticipant(rng, ParticipantProfile{}, error, 3);
  EXPECT_FALSE(outcome.manual_fixed);
  EXPECT_EQ(outcome.manual_time, Minutes(5));
}

TEST(UserModel, OcastaTimeScalesWithScreenshots) {
  Rng rng(4);
  UserStudyErrorParams error;
  double few = 0;
  double many = 0;
  for (int i = 0; i < 200; ++i) {
    few += static_cast<double>(
        SimulateParticipant(rng, ParticipantProfile{}, error, 1).screenshot_selection);
    many += static_cast<double>(
        SimulateParticipant(rng, ParticipantProfile{}, error, 11).screenshot_selection);
  }
  EXPECT_LT(few, many);
}

TEST(UserModel, StudyErrorsMatchPaperCases) {
  const auto errors = UserStudyErrors();
  ASSERT_EQ(errors.size(), 4u);
  EXPECT_EQ(errors[0].error_id, 11);
  EXPECT_EQ(errors[3].error_id, 16);
  // Case 16 is the one most participants fixed by hand.
  for (const auto& error : errors) {
    if (error.error_id != 16) {
      EXPECT_LT(error.manual_fix_prob, errors[3].manual_fix_prob);
    }
  }
}

}  // namespace
}  // namespace ocasta
