// Torture tests for the epoll event-loop server: slow clients that dribble
// bytes, pipelined bursts against a non-reading client (write-buffer
// backpressure), half-close draining, connection churn, the --max-conns
// overload reply, idle timeouts, multi-worker operation, and SIGPIPE
// safety on the wire helpers.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "api/codec.h"
#include "client/ttkv_client.h"
#include "server/server.h"
#include "server/wire.h"

namespace ocasta {
namespace {

std::string Frame(const std::string& payload) {
  std::string frame;
  AppendFrameHeader(frame, static_cast<uint32_t>(payload.size()));
  frame.append(payload);
  return frame;
}

// Connects and completes the HELLO handshake, returning the raw fd.
int RawConnect(uint16_t port) {
  const int fd = ConnectTcp("127.0.0.1", port);
  SendFrame(fd, api::EncodeHello(api::kProtocolVersion));
  const auto reply = RecvFrame(fd);
  EXPECT_TRUE(reply.has_value());
  if (reply.has_value()) {
    EXPECT_EQ(api::DecodeHelloReply(*reply), api::kProtocolVersion);
  }
  return fd;
}

TEST(EventLoopServer, DribbledFrameOneByteAtATime) {
  TtkvServer server(ServerOptions{.port = 0, .num_shards = 2});
  server.Start();
  const int fd = RawConnect(server.port());

  // A request trickling in one byte per write must still dispatch exactly
  // once, when its last byte lands.
  const std::string request = Frame(api::EncodeCommand(api::PutCmd{"slow/key", Value(7), 0}));
  for (const char byte : request) {
    ASSERT_EQ(::send(fd, &byte, 1, MSG_NOSIGNAL), 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto reply = RecvFrame(fd);
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(std::holds_alternative<api::OkResult>(api::DecodeResult(*reply).op));

  // The connection remains fully usable at normal speed.
  SendFrame(fd, api::EncodeCommand(api::GetCmd{"slow/key"}));
  const auto get_reply = RecvFrame(fd);
  ASSERT_TRUE(get_reply.has_value());
  EXPECT_EQ(std::get<api::ValueResult>(api::DecodeResult(*get_reply).op).value, Value(7));

  ::close(fd);
  server.Stop();
}

TEST(EventLoopServer, ManyPipelinedFramesInOneSend) {
  TtkvServer server(ServerOptions{.port = 0, .num_shards = 2});
  server.Start();
  const int fd = RawConnect(server.port());

  // 200 requests in ONE send: the loop must dispatch every frame the read
  // delivers and reply in request order.
  constexpr int kFrames = 200;
  std::string burst;
  for (int i = 0; i < kFrames; ++i) {
    burst += Frame(api::EncodeCommand(api::PutCmd{"pipe/key" + std::to_string(i), Value(i), 0}));
  }
  size_t sent = 0;
  while (sent < burst.size()) {
    const ssize_t n = ::send(fd, burst.data() + sent, burst.size() - sent, MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    sent += static_cast<size_t>(n);
  }
  for (int i = 0; i < kFrames; ++i) {
    const auto reply = RecvFrame(fd);
    ASSERT_TRUE(reply.has_value()) << "reply " << i;
    EXPECT_TRUE(std::holds_alternative<api::OkResult>(api::DecodeResult(*reply).op));
  }
  ::close(fd);
  server.Stop();
}

TEST(EventLoopServer, BurstThenHalfCloseStillGetsEveryReply) {
  TtkvServer server(ServerOptions{.port = 0, .num_shards = 2});
  server.Start();
  const int fd = RawConnect(server.port());

  constexpr int kFrames = 300;
  std::string burst;
  for (int i = 0; i < kFrames; ++i) {
    burst += Frame(api::EncodeCommand(api::PutCmd{"half/key", Value(i), 0}));
  }
  size_t sent = 0;
  while (sent < burst.size()) {
    const ssize_t n = ::send(fd, burst.data() + sent, burst.size() - sent, MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    sent += static_cast<size_t>(n);
  }
  // Half-close: "no more requests". Buffered frames must still execute and
  // every reply must arrive before the server closes the connection.
  ::shutdown(fd, SHUT_WR);
  int replies = 0;
  while (true) {
    const auto reply = RecvFrame(fd);
    if (!reply.has_value()) break;
    EXPECT_TRUE(std::holds_alternative<api::OkResult>(api::DecodeResult(*reply).op));
    ++replies;
  }
  EXPECT_EQ(replies, kFrames);
  ::close(fd);
  server.Stop();
}

// A client that pipelines a huge burst of large-reply requests but reads
// nothing: the server must bound its write queue (backpressure), keep
// serving OTHER clients meanwhile, and deliver every reply once the slow
// client finally drains.
TEST(EventLoopServer, WriteBackpressureBoundsSlowReader) {
  TtkvServer server(ServerOptions{.port = 0, .num_shards = 2});
  server.Start();

  // Seed a ~64 KiB value; each HISTORY/GET reply is then large enough that
  // a few hundred pipelined requests overflow socket buffers and reach the
  // server's high watermark.
  TtkvClient seeder("127.0.0.1", server.port());
  const std::string big(64 << 10, 'v');
  seeder.Put("big/key", Value(big), Seconds(1));

  const int fd = RawConnect(server.port());
  constexpr int kRequests = 400;  // ~25 MiB of replies > 8 MiB high water.
  std::string burst;
  for (int i = 0; i < kRequests; ++i) {
    burst += Frame(api::EncodeCommand(api::GetCmd{"big/key"}));
  }
  size_t sent = 0;
  while (sent < burst.size()) {
    const ssize_t n = ::send(fd, burst.data() + sent, burst.size() - sent, MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    sent += static_cast<size_t>(n);
  }

  // While the slow reader is parked, other clients stay responsive.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  seeder.Put("live/key", Value(1), Seconds(2));
  EXPECT_EQ(seeder.Get("live/key"), Value(1));

  // Now drain everything; each reply must carry the full value.
  for (int i = 0; i < kRequests; ++i) {
    const auto reply = RecvFrame(fd);
    ASSERT_TRUE(reply.has_value()) << "reply " << i;
    const auto value = std::get<api::ValueResult>(api::DecodeResult(*reply).op).value;
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(value->as_string().size(), big.size());
  }
  ::close(fd);
  server.Stop();
}

// Regression: a burst whose replies cross the write high watermark while
// the client reads EAGERLY. The reply queue can then drain without ever
// hitting EAGAIN, so no EPOLLOUT recovery fires — the server must still
// come back for the request frames it left unparsed in its input buffer
// (they live in userspace; no epoll event will ever re-deliver them).
TEST(EventLoopServer, LargeReplyBurstWithEagerReaderGetsEveryReply) {
  TtkvServer server(ServerOptions{.port = 0, .num_shards = 2});
  server.Start();
  TtkvClient seeder("127.0.0.1", server.port());
  const std::string big(1 << 20, 'v');  // 1 MiB value.
  seeder.Put("eager/key", Value(big), Seconds(1));

  const int fd = RawConnect(server.port());
  constexpr int kRequests = 16;  // ~16 MiB of replies, 2x the high watermark.
  std::string burst;
  for (int i = 0; i < kRequests; ++i) {
    burst += Frame(api::EncodeCommand(api::GetCmd{"eager/key"}));
  }
  // Reader drains concurrently, so the server's flushes rarely block.
  std::thread reader([&] {
    for (int i = 0; i < kRequests; ++i) {
      const auto reply = RecvFrame(fd);
      ASSERT_TRUE(reply.has_value()) << "reply " << i;
      const auto value = std::get<api::ValueResult>(api::DecodeResult(*reply).op).value;
      ASSERT_TRUE(value.has_value());
      EXPECT_EQ(value->as_string().size(), big.size());
    }
  });
  size_t sent = 0;
  while (sent < burst.size()) {
    const ssize_t n = ::send(fd, burst.data() + sent, burst.size() - sent, MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    sent += static_cast<size_t>(n);
  }
  reader.join();  // Hangs (until the gtest timeout) if any frame is stranded.
  ::close(fd);
  server.Stop();
}

TEST(EventLoopServer, ConnectionChurn256) {
  TtkvServer server(ServerOptions{.port = 0, .num_shards = 4});
  server.Start();
  // 256 connect → op → disconnect cycles; the daemon must neither leak
  // connections nor lose a single op.
  for (int i = 0; i < 256; ++i) {
    TtkvClient client("127.0.0.1", server.port());
    client.Put("churn/key" + std::to_string(i % 16), Value(i), 0);
  }
  TtkvClient checker("127.0.0.1", server.port());
  EXPECT_EQ(checker.Stats().puts, 256u);
  EXPECT_GE(server.connections_served(), 256u);
  server.Stop();
  EXPECT_EQ(server.open_connections(), 0);
}

TEST(EventLoopServer, Holds256SimultaneousConnections) {
  TtkvServer server(ServerOptions{.port = 0, .num_shards = 4, .max_conns = 512});
  server.Start();
  std::vector<int> fds;
  for (int i = 0; i < 256; ++i) fds.push_back(RawConnect(server.port()));
  // Every one of the 256 open connections must answer an op.
  for (size_t i = 0; i < fds.size(); ++i) {
    SendFrame(fds[i], api::EncodeCommand(api::PutCmd{"open/key", Value(static_cast<int>(i)), 0}));
    const auto reply = RecvFrame(fds[i]);
    ASSERT_TRUE(reply.has_value()) << "conn " << i;
    EXPECT_TRUE(std::holds_alternative<api::OkResult>(api::DecodeResult(*reply).op));
  }
  EXPECT_EQ(server.open_connections(), 256);
  for (int fd : fds) ::close(fd);
  server.Stop();
}

TEST(EventLoopServer, MaxConnsOverloadReply) {
  TtkvServer server(ServerOptions{.port = 0, .num_shards = 2, .max_conns = 2});
  server.Start();
  // Fill the two slots (HELLO round trip proves each was admitted).
  const int fd1 = RawConnect(server.port());
  const int fd2 = RawConnect(server.port());

  // The third connection gets a graceful error reply, then EOF — even
  // though it behaves like a real client and fires HELLO before reading
  // (unread bytes at close() would otherwise turn the reply into an RST).
  const int fd3 = ConnectTcp("127.0.0.1", server.port());
  SendFrame(fd3, api::EncodeHello(api::kProtocolVersion));
  const auto reply = RecvFrame(fd3);
  ASSERT_TRUE(reply.has_value());
  const auto result = api::DecodeResult(*reply);
  const auto* err = std::get_if<api::ErrorResult>(&result.op);
  ASSERT_NE(err, nullptr);
  EXPECT_NE(err->message.find("max-conns"), std::string::npos);
  EXPECT_EQ(RecvFrame(fd3), std::nullopt);
  ::close(fd3);
  EXPECT_EQ(server.overload_rejections(), 1u);

  // Freeing a slot re-opens admission.
  ::close(fd1);
  std::this_thread::sleep_for(std::chrono::milliseconds(700));  // Loop notices the close.
  const int fd4 = RawConnect(server.port());
  ::close(fd4);
  ::close(fd2);
  server.Stop();
}

TEST(EventLoopServer, IdleConnectionsAreSweptActiveOnesAreNot) {
  TtkvServer server(
      ServerOptions{.port = 0, .num_shards = 2, .idle_timeout_seconds = 0.7});
  server.Start();
  const int idle_fd = RawConnect(server.port());
  const int busy_fd = RawConnect(server.port());

  // Keep one connection chatty past the idle horizon.
  for (int i = 0; i < 6; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    SendFrame(busy_fd, api::EncodeCommand(api::PingCmd{}));
    const auto reply = RecvFrame(busy_fd);
    ASSERT_TRUE(reply.has_value());
  }
  // The idle one was closed by the sweep (EOF); the busy one survived.
  EXPECT_EQ(RecvFrame(idle_fd), std::nullopt);
  EXPECT_GE(server.idle_closed(), 1u);
  SendFrame(busy_fd, api::EncodeCommand(api::PingCmd{}));
  EXPECT_TRUE(RecvFrame(busy_fd).has_value());

  ::close(idle_fd);
  ::close(busy_fd);
  server.Stop();
}

TEST(EventLoopServer, MultipleIoThreadsShareTheLoad) {
  TtkvServer server(ServerOptions{.port = 0, .num_shards = 4, .io_threads = 3});
  server.Start();
  EXPECT_EQ(server.io_threads(), 3u);
  constexpr int kClients = 9;  // Round-robin: 3 conns per loop.
  std::vector<std::thread> threads;
  for (int id = 0; id < kClients; ++id) {
    threads.emplace_back([&, id] {
      TtkvClient client("127.0.0.1", server.port());
      for (int i = 0; i < 50; ++i) {
        client.Put("multi/key" + std::to_string(id), Value(i), 0);
        client.Get("multi/key" + std::to_string(id));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  TtkvClient checker("127.0.0.1", server.port());
  EXPECT_EQ(checker.Stats().puts, static_cast<uint64_t>(kClients) * 50);
  server.Stop();
}

// Oversized length prefixes drop the connection (same contract as the old
// blocking server) without disturbing anyone else.
TEST(EventLoopServer, GarbageLengthPrefixDropsOnlyThatConnection) {
  TtkvServer server(ServerOptions{.port = 0, .num_shards = 2});
  server.Start();
  const int bad = RawConnect(server.port());
  const char bogus[4] = {'\xff', '\xff', '\xff', '\xff'};
  ASSERT_EQ(::send(bad, bogus, 4, MSG_NOSIGNAL), 4);
  EXPECT_EQ(RecvFrame(bad), std::nullopt);  // Dropped.
  ::close(bad);

  TtkvClient healthy("127.0.0.1", server.port());
  healthy.Ping();
  server.Stop();
}

// SIGPIPE regression: sending on a peer-closed socket must surface as
// WireError, not kill the process (MSG_NOSIGNAL on every send path).
TEST(WireSigpipe, SendToClosedPeerThrowsInsteadOfSigpipe) {
  const int listen_fd = ListenLoopback(0);
  const uint16_t port = BoundPort(listen_fd);
  const int sender = ConnectTcp("127.0.0.1", port);
  const int receiver = ::accept(listen_fd, nullptr, nullptr);
  ASSERT_GE(receiver, 0);
  ::close(receiver);  // Peer gone; further sends will see EPIPE after the RST.

  const std::string payload(1 << 20, 'x');
  EXPECT_THROW(
      {
        for (int i = 0; i < 16; ++i) SendFrame(sender, payload);
      },
      WireError);
  ::close(sender);
  ::close(listen_fd);
}

}  // namespace
}  // namespace ocasta
