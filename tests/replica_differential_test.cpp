// Replication differential property test: one seeded random command trace,
// three executions —
//   LocalEngine   (in-process reference, commands applied directly)
//   leader        (a real TtkvServer driven over TCP with the same trace)
//   follower      (tails the leader's WAL — and CRASHES at random trace
//                  offsets: the server object is dropped with no shutdown
//                  hook, a random cut is torn off its newest WAL segment,
//                  and a new server re-bootstraps from the damaged dir)
// — and at the end the follower must equal the leader BYTE-FOR-BYTE
// (api::Snapshot().Serialize(), read counters included: reads inside
// logged batches replay on the follower), while the leader must match the
// reference on every durable dimension.
//
// This is the replication counterpart of durable_differential_test.cpp:
// that suite proves recovery-from-own-disk is faithful; this one proves a
// follower — which applies the leader's records through the same recovery
// path — converges to the identical bytes through crashes and resyncs.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <random>
#include <thread>

#include "api/codec.h"
#include "api/engine.h"
#include "api/local_engine.h"
#include "client/ttkv_client.h"
#include "persist/durable_engine.h"
#include "server/server.h"
#include "ttkv/serialize.h"

namespace ocasta {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  TempDir() {
    char tmpl[] = "/tmp/ocasta_replica_diff_XXXXXX";
    if (::mkdtemp(tmpl) == nullptr) throw Error("mkdtemp failed");
    path = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

bool WaitFor(const std::function<bool()>& cond, double timeout_seconds = 10.0) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(timeout_seconds));
  while (!cond()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

ServerOptions LeaderOptions(const std::string& dir) {
  ServerOptions options;
  options.port = 0;
  options.num_shards = 4;
  options.data_dir = dir;
  return options;
}

ServerOptions FollowerOptions(const std::string& dir, uint16_t leader_port) {
  ServerOptions options = LeaderOptions(dir);
  options.follow_host = "127.0.0.1";
  options.follow_port = leader_port;
  return options;
}

uint64_t LastLsn(TtkvServer& server) {
  return dynamic_cast<persist::DurableEngine&>(server.engine()).wal().last_lsn();
}

void WaitCaughtUp(TtkvServer& leader, TtkvServer& follower) {
  const uint64_t target = LastLsn(leader);
  ASSERT_TRUE(WaitFor([&] { return follower.follower()->applied_lsn() >= target; }))
      << "follower stuck at " << follower.follower()->applied_lsn() << " of " << target
      << " (last_error: " << follower.follower()->last_error() << ")";
}

std::string EngineImage(api::Engine& engine) { return api::Snapshot(engine).Serialize(); }

Value RandomValue(std::mt19937& rng) {
  switch (rng() % 4) {
    case 0: return Value(static_cast<int64_t>(rng() % 1000));
    case 1: return Value(0.5 * static_cast<double>(rng() % 100));
    case 2: return Value((rng() % 2) == 0);
    default: return Value("v" + std::to_string(rng() % 64));
  }
}

std::string RandomKey(std::mt19937& rng) { return "/rd/" + std::to_string(rng() % 24); }

// One random command. Mutations carry explicit strictly-increasing
// timestamps (engine-assigned stamps would legitimately differ between the
// reference and the leader). Standalone GETs are EXCLUDED — they are not
// write-ahead logged, so their read-count side effect cannot replicate —
// but GETs inside mutating batches are included on purpose: the whole
// batch is one WAL record, so the follower replays those reads and the
// read counters must match byte-for-byte.
api::Command RandomCommand(std::mt19937& rng, TimeMicros* clock) {
  *clock += Seconds(1);
  const uint64_t roll = rng() % 100;
  if (roll < 55) return api::PutCmd{RandomKey(rng), RandomValue(rng), *clock};
  if (roll < 70) return api::DeleteCmd{RandomKey(rng), *clock, (rng() % 3) == 0};
  if (roll < 96) {
    api::BatchCmd batch;
    batch.commands.push_back(api::PutCmd{RandomKey(rng), RandomValue(rng), *clock});
    if (roll < 80) batch.commands.push_back(api::GetCmd{RandomKey(rng)});
    api::BatchCmd nested;
    *clock += Seconds(1);
    nested.commands.push_back(api::DeleteCmd{RandomKey(rng), *clock, true});
    *clock += Seconds(1);
    nested.commands.push_back(api::PutCmd{RandomKey(rng), RandomValue(rng), *clock});
    batch.commands.push_back(std::move(nested));
    return batch;
  }
  // Compact far enough behind the write frontier to keep some history.
  return api::CompactCmd{*clock > Seconds(40) ? *clock - Seconds(30) : 0};
}

// Tears a random cut off the end of the follower's newest WAL segment —
// kill -9 mid-write plus a torn page.
void TruncateNewestSegment(const std::string& dir, std::mt19937& rng) {
  std::vector<fs::path> segments;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.starts_with("wal-") && name.ends_with(".log")) segments.push_back(entry.path());
  }
  ASSERT_FALSE(segments.empty());
  std::sort(segments.begin(), segments.end());
  const fs::path& newest = segments.back();
  const uint64_t size = static_cast<uint64_t>(fs::file_size(newest));
  fs::resize_file(newest, size - (rng() % (size + 1)));
}

TEST(ReplicaDifferentialTest, CrashingFollowerConvergesToLeaderBytes) {
  for (uint32_t seed = 1; seed <= 4; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    std::mt19937 rng(seed * 7919);
    TimeMicros clock = 0;

    TempDir leader_dir, follower_dir;
    TtkvServer leader(LeaderOptions(leader_dir.path));
    leader.Start();
    TtkvClient client("127.0.0.1", leader.port());
    api::LocalEngine reference;

    auto follower =
        std::make_unique<TtkvServer>(FollowerOptions(follower_dir.path, leader.port()));
    follower->Start();

    // Three segments of traffic with a follower crash between each: the
    // crash offset is wherever the trace happens to be, and the torn cut
    // is a random byte position — over the seeds this lands mid-record,
    // at record boundaries, and inside the segment header.
    constexpr int kSegments = 3;
    constexpr int kOpsPerSegment = 35;
    for (int segment = 0; segment < kSegments; ++segment) {
      SCOPED_TRACE("segment " + std::to_string(segment));
      for (int i = 0; i < kOpsPerSegment; ++i) {
        api::Command cmd = RandomCommand(rng, &clock);
        reference.Apply(cmd);
        client.Apply(std::move(cmd));
      }
      if (segment == kSegments - 1) break;
      // Crash while the pull loop may be mid-flight; no clean shutdown.
      follower.reset();
      TruncateNewestSegment(follower_dir.path, rng);
      follower =
          std::make_unique<TtkvServer>(FollowerOptions(follower_dir.path, leader.port()));
      follower->Start();
    }

    WaitCaughtUp(leader, *follower);
    // The headline assertion: identical BYTES, not just identical answers.
    EXPECT_EQ(EngineImage(follower->engine()), EngineImage(leader.engine()));

    // And the leader itself faithfully executed the trace: every record
    // matches the in-process reference. (Not a byte comparison — the
    // single-TTKV reference serializes in insertion order, the sharded
    // leader's merged image in sorted-key order; the CONTENT per key must
    // be identical, read counters included.)
    const TTKV leader_image = api::Snapshot(leader.engine());
    const TTKV reference_image = api::Snapshot(reference);
    ASSERT_EQ(leader_image.num_keys(), reference_image.num_keys());
    for (uint32_t id = 0; id < reference_image.num_keys(); ++id) {
      const VersionedRecord& want = reference_image.record(id);
      const VersionedRecord* got = leader_image.find(want.key);
      ASSERT_NE(got, nullptr) << want.key;
      EXPECT_EQ(got->versions, want.versions) << want.key;
      EXPECT_EQ(got->write_count, want.write_count) << want.key;
      EXPECT_EQ(got->delete_count, want.delete_count) << want.key;
      EXPECT_EQ(got->read_count, want.read_count) << want.key;
    }

    const EngineStats leader_stats = api::Stats(leader.engine());
    const EngineStats follower_stats = api::Stats(follower->engine());
    EXPECT_EQ(follower_stats.puts, leader_stats.puts);
    EXPECT_EQ(follower_stats.gets, leader_stats.gets);
    EXPECT_EQ(follower_stats.deletes, leader_stats.deletes);

    follower->Stop();
    leader.Stop();
  }
}

// The same convergence claim, ending in PROMOTION instead of catch-up: the
// leader dies for real, the crashed-and-resynced follower takes over, and
// the new leader's image must be exactly the dead leader's image.
TEST(ReplicaDifferentialTest, PromotedFollowerMatchesDeadLeaderBytes) {
  std::mt19937 rng(20260807);
  TimeMicros clock = 0;

  TempDir leader_dir, follower_dir;
  auto leader = std::make_unique<TtkvServer>(LeaderOptions(leader_dir.path));
  leader->Start();
  TtkvClient client("127.0.0.1", leader->port());

  auto follower =
      std::make_unique<TtkvServer>(FollowerOptions(follower_dir.path, leader->port()));
  follower->Start();

  for (int i = 0; i < 30; ++i) {
    api::Command cmd = RandomCommand(rng, &clock);
    client.Apply(std::move(cmd));
  }
  // Crash + resync once before the failover, so promotion runs on a
  // follower with recovery scar tissue, not a pristine one.
  follower.reset();
  TruncateNewestSegment(follower_dir.path, rng);
  follower =
      std::make_unique<TtkvServer>(FollowerOptions(follower_dir.path, leader->port()));
  follower->Start();
  for (int i = 0; i < 30; ++i) {
    api::Command cmd = RandomCommand(rng, &clock);
    client.Apply(std::move(cmd));
  }

  WaitCaughtUp(*leader, *follower);
  const std::string dead_leader_image = EngineImage(leader->engine());
  const uint64_t dead_leader_lsn = LastLsn(*leader);
  leader.reset();

  TtkvClient promoter("127.0.0.1", follower->port());
  promoter.Promote();
  EXPECT_FALSE(follower->is_follower());
  EXPECT_EQ(EngineImage(follower->engine()), dead_leader_image);

  // The promoted log continues exactly where the shipped history ended.
  promoter.Put("/after/promotion", Value("ok"), clock + Seconds(1));
  EXPECT_EQ(LastLsn(*follower), dead_leader_lsn + 1);

  follower->Stop();
}

}  // namespace
}  // namespace ocasta
