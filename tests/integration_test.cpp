// End-to-end integration tests: trace generation → TTKV → clustering →
// error injection → repair, on real Table I machines. These assert the
// paper's headline behaviours hold on the generated data.
#include <gtest/gtest.h>

#include "analysis/ground_truth.h"
#include "apps/catalog.h"
#include "clustering/engine.h"
#include "scenarios/harness.h"
#include "workload/generator.h"
#include "workload/profiles.h"

namespace ocasta {
namespace {

const MachineTrace& Linux1() {
  static const MachineTrace machine = GenerateMachineTrace(ProfileByName("Linux-1"));
  return machine;
}

const MachineTrace& Linux2() {
  static const MachineTrace machine = GenerateMachineTrace(ProfileByName("Linux-2"));
  return machine;
}

TEST(Integration, EvolutionClustersContainSignaturePairs) {
  const TTKV ttkv = BuildAppTtkv(Linux1(), kEvolution);
  const ClusterSet clusters = ClusterKeys(ttkv, ClusteringParams{});
  // The paper's Figure 1c pair must cluster together.
  EXPECT_EQ(clusters.cluster_of(ttkv.key_id("/apps/evolution/mail/display/mark_seen")),
            clusters.cluster_of(ttkv.key_id("/apps/evolution/mail/display/mark_seen_timeout")));
  // And the offline pair.
  EXPECT_EQ(clusters.cluster_of(ttkv.key_id("/apps/evolution/shell/start_offline")),
            clusters.cluster_of(ttkv.key_id("/apps/evolution/shell/offline_sync")));
}

TEST(Integration, EvolutionAccuracySuffersFromSectionRewrites) {
  // Table II: Evolution is the accuracy outlier (38.9% in the paper)
  // because whole GConf sections are rewritten together.
  const TTKV ttkv = BuildAppTtkv(Linux1(), kEvolution);
  const ClusterSet clusters = ClusterKeys(ttkv, ClusteringParams{});
  const AccuracyReport report = EvaluateClusters(
      kEvolution, clusters, ttkv, GroundTruth::FromSchema(AppSchemaByName(kEvolution)));
  EXPECT_GE(report.oversized, 8u);
  EXPECT_LT(report.accuracy(), 0.6);
}

TEST(Integration, NoiseClustersSortLast) {
  const TTKV ttkv = BuildAppTtkv(Linux1(), kEvolution);
  const ClusterSet clusters = ClusterKeys(ttkv, ClusteringParams{});
  const auto order = clusters.RecoveryOrder();
  // The window-geometry churn keys must land in the last quarter of the
  // search order (the sort exists to avoid trying them early).
  const uint32_t noise_cluster = clusters.cluster_of(ttkv.key_id("/apps/evolution/mail/ui/width"));
  size_t position = 0;
  for (size_t i = 0; i < order.size(); ++i) {
    if (order[i] == noise_cluster) position = i;
  }
  EXPECT_GT(position, order.size() * 3 / 4);
}

TEST(Integration, Scenario9NeedsClustering) {
  // Error #9 (Evolution mark_seen pair) is one of the five multi-key
  // errors: Ocasta fixes it, single-key rollback cannot.
  const ScenarioRun run = RunScenario(Linux1(), ScenarioById(9), ScenarioRunOptions{});
  EXPECT_TRUE(run.ocasta.fixed);
  EXPECT_FALSE(run.noclust.fixed);
  EXPECT_EQ(run.offending_cluster_size, 2u);
  EXPECT_EQ(run.ocasta.fixed_state.at("/apps/evolution/mail/display/mark_seen"),
            SnapshotAt(Linux1(), kEvolution, Linux1().end_time - Days(14))
                .at("/apps/evolution/mail/display/mark_seen"));
}

TEST(Integration, Scenario13SingleKeyBothFix) {
  const ScenarioRun run = RunScenario(Linux2(), ScenarioById(13), ScenarioRunOptions{});
  EXPECT_TRUE(run.ocasta.fixed);
  EXPECT_TRUE(run.noclust.fixed);
}

TEST(Integration, BfsAndDfsAgreeOnFixability) {
  ScenarioRunOptions bfs;
  bfs.strategy = SearchStrategy::kBfs;
  const ScenarioRun dfs_run = RunScenario(Linux1(), ScenarioById(8), ScenarioRunOptions{});
  const ScenarioRun bfs_run = RunScenario(Linux1(), ScenarioById(8), bfs);
  EXPECT_TRUE(dfs_run.ocasta.fixed);
  EXPECT_TRUE(bfs_run.ocasta.fixed);
  // Identical candidate set, different order.
  EXPECT_EQ(dfs_run.ocasta.total_trials, bfs_run.ocasta.total_trials);
}

TEST(Integration, SpuriousWritesSlowBfsMore) {
  ScenarioRunOptions clean;
  ScenarioRunOptions noisy;
  noisy.spurious_writes = 2;
  ScenarioRunOptions noisy_bfs = noisy;
  noisy_bfs.strategy = SearchStrategy::kBfs;
  ScenarioRunOptions clean_bfs = clean;
  clean_bfs.strategy = SearchStrategy::kBfs;

  const size_t dfs_delta = RunScenario(Linux1(), ScenarioById(8), noisy).ocasta.trials_to_fix -
                           RunScenario(Linux1(), ScenarioById(8), clean).ocasta.trials_to_fix;
  const size_t bfs_delta =
      RunScenario(Linux1(), ScenarioById(8), noisy_bfs).ocasta.trials_to_fix -
      RunScenario(Linux1(), ScenarioById(8), clean_bfs).ocasta.trials_to_fix;
  EXPECT_GT(bfs_delta, dfs_delta);  // Figure 2b's claim.
}

TEST(Integration, TimeToFixWellBelowFullSearch) {
  // The modification-count sort pays off: finding the offending cluster is
  // much cheaper than exhausting the history (78% faster in the paper).
  const ScenarioRun run = RunScenario(Linux1(), ScenarioById(10), ScenarioRunOptions{});
  ASSERT_TRUE(run.ocasta.fixed);
  EXPECT_LT(run.ocasta.time_to_fix, run.ocasta.total_time);
}

TEST(Integration, WiderWindowMergesMoreKeys) {
  const TTKV ttkv = BuildAppTtkv(Linux1(), kEvolution);
  ClusteringParams narrow;
  narrow.window_seconds = 0.0;
  ClusteringParams wide;
  wide.window_seconds = 30.0;
  EXPECT_LE(ClusterKeys(ttkv, narrow).average_multi_cluster_size(),
            ClusterKeys(ttkv, wide).average_multi_cluster_size());
}

TEST(Integration, LowerThresholdNeverShrinksClusters) {
  const TTKV ttkv = BuildAppTtkv(Linux1(), kEvolution);
  ClusteringParams strict;  // Threshold 2.
  ClusteringParams loose;
  loose.threshold_correlation = 1.0;
  const ClusterSet strict_clusters = ClusterKeys(ttkv, strict);
  const ClusterSet loose_clusters = ClusterKeys(ttkv, loose);
  // Lowering the threshold only merges further: every strict cluster is
  // contained in some loose cluster.
  for (const KeyCluster& cluster : strict_clusters.clusters()) {
    const uint32_t target = loose_clusters.cluster_of(cluster.keys.front());
    for (uint32_t key : cluster.keys) {
      EXPECT_EQ(loose_clusters.cluster_of(key), target);
    }
  }
}

TEST(Integration, TraceSerializationPreservesClustering) {
  // Save the trace to text, reload, rebuild the TTKV: identical clusters.
  const TraceLog reloaded = TraceLog::ParseText(Linux2().trace.ToText());
  TTKV original;
  TTKV restored;
  TtkvRecorder rec_a(original);
  TtkvRecorder rec_b(restored);
  for (const AccessEvent& event : Linux2().trace.events()) {
    if (event.app == kChrome) rec_a.OnAccess(event);
  }
  for (const AccessEvent& event : reloaded.events()) {
    if (event.app == kChrome) rec_b.OnAccess(event);
  }
  EXPECT_EQ(original, restored);
}

}  // namespace
}  // namespace ocasta
