// Replication suite: ReplicationHub quorum accounting, follower WAL
// shipping end-to-end through two real daemons, snapshot bootstrap,
// crash-at-a-random-offset resync (the differential test), the quorum
// commit gate, NOT_LEADER rejection plus client failover, and promotion.
//
// The load-bearing assertion style is BYTE equality: after catch-up the
// follower's merged TTKV image must serialize to exactly the leader's
// bytes, because the follower applied the leader's own WAL records at the
// leader's own LSNs — anything weaker would let "semantically similar"
// divergence (re-stamped timestamps, re-ordered batches) slip through.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <random>
#include <thread>

#include "api/codec.h"
#include "api/engine.h"
#include "api/local_engine.h"
#include "client/ttkv_client.h"
#include "persist/durable_engine.h"
#include "replica/replication_hub.h"
#include "server/server.h"
#include "ttkv/serialize.h"

namespace ocasta {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  TempDir() {
    char tmpl[] = "/tmp/ocasta_replica_test_XXXXXX";
    if (::mkdtemp(tmpl) == nullptr) throw Error("mkdtemp failed");
    path = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

// Polls `cond` until true or ~10s elapse (replication is asynchronous; the
// follower pulls on a 5ms interval here, so normal catch-up is

// milliseconds and the deadline only matters on a broken build).
bool WaitFor(const std::function<bool()>& cond, double timeout_seconds = 10.0) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(timeout_seconds));
  while (!cond()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

ServerOptions LeaderOptions(const std::string& dir) {
  ServerOptions options;
  options.port = 0;
  options.num_shards = 4;
  options.data_dir = dir;
  return options;
}

ServerOptions FollowerOptions(const std::string& dir, uint16_t leader_port) {
  ServerOptions options = LeaderOptions(dir);
  options.follow_host = "127.0.0.1";
  options.follow_port = leader_port;
  return options;
}

persist::DurableEngine& Durable(TtkvServer& server) {
  return dynamic_cast<persist::DurableEngine&>(server.engine());
}

uint64_t LastLsn(TtkvServer& server) { return Durable(server).wal().last_lsn(); }

// Blocks until the follower has durably applied everything the leader has
// logged so far. applied_lsn advances AFTER the inner apply, so state
// reads that follow are safe.
void WaitCaughtUp(TtkvServer& leader, TtkvServer& follower) {
  const uint64_t target = LastLsn(leader);
  ASSERT_TRUE(WaitFor([&] { return follower.follower()->applied_lsn() >= target; }))
      << "follower stuck at " << follower.follower()->applied_lsn() << " of " << target
      << " (last_error: " << follower.follower()->last_error() << ")";
}

std::string EngineImage(TtkvServer& server) { return api::Snapshot(server.engine()).Serialize(); }

// --- ReplicationHub unit tests ----------------------------------------------

TEST(ReplicationHubTest, QuorumLsnIsNthHighestAck) {
  replica::ReplicationHub hub({.quorum_followers = 2, .ack_timeout_seconds = 0.05});
  EXPECT_EQ(hub.QuorumAckedLsn(), 0u);  // Nobody has ever pulled.
  hub.OnFollowerAck("f1", 5, 5);
  EXPECT_EQ(hub.QuorumAckedLsn(), 0u);  // One follower cannot make a quorum of two.
  hub.OnFollowerAck("f2", 3, 5);
  EXPECT_EQ(hub.QuorumAckedLsn(), 3u);  // 2nd-highest of {5, 3}.
  hub.OnFollowerAck("f3", 9, 9);
  EXPECT_EQ(hub.QuorumAckedLsn(), 5u);  // 2nd-highest of {5, 3, 9}.
  EXPECT_EQ(hub.follower_count(), 3u);
}

TEST(ReplicationHubTest, AnonymousProbesGetNoQuorumStanding) {
  replica::ReplicationHub hub({.quorum_followers = 1, .ack_timeout_seconds = 0.05});
  hub.OnFollowerAck("", 100, 100);
  EXPECT_EQ(hub.follower_count(), 0u);
  EXPECT_EQ(hub.QuorumAckedLsn(), 0u);
}

TEST(ReplicationHubTest, AcksDoNotRatchet) {
  replica::ReplicationHub hub({.quorum_followers = 1, .ack_timeout_seconds = 0.05});
  hub.OnFollowerAck("f1", 9, 9);
  EXPECT_EQ(hub.QuorumAckedLsn(), 9u);
  // A re-bootstrapped follower reports a LOWER cursor; the hub must track
  // it (the old data was durable only in its past life).
  hub.OnFollowerAck("f1", 4, 9);
  EXPECT_EQ(hub.QuorumAckedLsn(), 4u);
}

TEST(ReplicationHubTest, ZeroQuorumIsAlwaysSatisfied) {
  replica::ReplicationHub hub({.quorum_followers = 0, .ack_timeout_seconds = 0.05});
  EXPECT_EQ(hub.QuorumAckedLsn(), UINT64_MAX);
  hub.WaitQuorum(12345);  // Must not block or throw.
}

TEST(ReplicationHubTest, WaitQuorumTimesOutWithDiagnosticMessage) {
  replica::ReplicationHub hub({.quorum_followers = 2, .ack_timeout_seconds = 0.05});
  hub.OnFollowerAck("f1", 7, 7);
  try {
    hub.WaitQuorum(7);
    FAIL() << "expected WaitQuorum to time out";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("quorum not reached"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("durable on the leader"), std::string::npos);
  }
}

TEST(ReplicationHubTest, WaitQuorumWakesOnAck) {
  replica::ReplicationHub hub({.quorum_followers = 1, .ack_timeout_seconds = 5.0});
  std::thread acker([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    hub.OnFollowerAck("f1", 8, 8);
  });
  hub.WaitQuorum(8);  // Released by the ack, well before the 5s timeout.
  acker.join();
  EXPECT_EQ(hub.QuorumAckedLsn(), 8u);
}

// --- End-to-end: follower tails a live leader -------------------------------

TEST(ReplicaTest, FollowerTailsLeaderByteForByte) {
  TempDir leader_dir, follower_dir;
  TtkvServer leader(LeaderOptions(leader_dir.path));
  leader.Start();

  TtkvClient client("127.0.0.1", leader.port());
  client.Put("/apps/term/shell", Value("zsh"), Seconds(1));
  client.Put("/apps/term/cols", Value(80), Seconds(2));
  client.Delete("/apps/term/cols", Seconds(3));

  TtkvServer follower(FollowerOptions(follower_dir.path, leader.port()));
  follower.Start();
  ASSERT_TRUE(follower.is_follower());
  ASSERT_NE(follower.follower(), nullptr);

  // Mutations AFTER the follower attached, including a nested batch — the
  // WAL records a batch as one frame and the follower must apply it the
  // same way.
  client.Put("/apps/term/shell", Value("bash"), Seconds(4));
  api::BatchCmd batch;
  batch.commands.push_back(api::PutCmd{"/batch/a", Value(int64_t{7}), Seconds(5)});
  api::BatchCmd nested;
  nested.commands.push_back(api::PutCmd{"/batch/b", Value("inner"), Seconds(6)});
  nested.commands.push_back(api::DeleteCmd{"/apps/term/shell", Seconds(7), false});
  batch.commands.push_back(std::move(nested));
  client.Apply(std::move(batch));

  WaitCaughtUp(leader, follower);
  EXPECT_EQ(EngineImage(follower), EngineImage(leader));

  // STATS totals travel with the stream (satellite: stats contract).
  const EngineStats leader_stats = api::Stats(leader.engine());
  const EngineStats follower_stats = api::Stats(follower.engine());
  EXPECT_EQ(follower_stats.puts, leader_stats.puts);
  EXPECT_EQ(follower_stats.deletes, leader_stats.deletes);

  // Reads are served locally by the follower.
  EXPECT_EQ(api::GetAt(follower.engine(), "/batch/b", Seconds(6)), Value("inner"));

  follower.Stop();
  leader.Stop();
}

TEST(ReplicaTest, FollowerRejectsMutationsAndClientFailsOver) {
  TempDir leader_dir, follower_dir;
  TtkvServer leader(LeaderOptions(leader_dir.path));
  leader.Start();
  TtkvServer follower(FollowerOptions(follower_dir.path, leader.port()));
  follower.Start();

  // Raw mutation at the follower: a typed NOT_LEADER carrying the leader's
  // address, with NOTHING applied.
  TtkvClient raw("127.0.0.1", follower.port());
  const api::Result rejected = raw.ApplyRaw(api::PutCmd{"/x", Value(1), Seconds(1)});
  const auto* redirect = std::get_if<api::NotLeaderResult>(&rejected.op);
  ASSERT_NE(redirect, nullptr);
  EXPECT_EQ(redirect->leader_host, "127.0.0.1");
  EXPECT_EQ(redirect->leader_port, leader.port());
  EXPECT_EQ(LastLsn(follower), 0u);

  // The typed client follows the redirect transparently: the Put lands on
  // the leader and replicates back to the follower.
  TtkvClient failover("127.0.0.1", follower.port());
  failover.Put("/routed", Value("via-redirect"), Seconds(2));
  EXPECT_EQ(LastLsn(leader), 1u);
  WaitCaughtUp(leader, follower);
  EXPECT_EQ(api::GetAt(follower.engine(), "/routed", Seconds(2)), Value("via-redirect"));

  // Reads at the follower are NOT redirected.
  TtkvClient reader("127.0.0.1", follower.port());
  EXPECT_EQ(reader.Get("/routed"), Value("via-redirect"));

  follower.Stop();
  leader.Stop();
}

TEST(ReplicaTest, StatusProbeReportsRoleAndLsn) {
  TempDir leader_dir, follower_dir;
  TtkvServer leader(LeaderOptions(leader_dir.path));
  leader.Start();
  TtkvClient client("127.0.0.1", leader.port());
  client.Put("/a", Value(1), Seconds(1));

  TtkvServer follower(FollowerOptions(follower_dir.path, leader.port()));
  follower.Start();
  WaitCaughtUp(leader, follower);

  TtkvClient leader_probe("127.0.0.1", leader.port());
  const api::ReplicateResult leader_status = leader_probe.Replicate("", 0, 0);
  EXPECT_FALSE(leader_status.follower);
  EXPECT_EQ(leader_status.leader_lsn, 1u);
  EXPECT_TRUE(leader_status.records.empty());  // max_records == 0: pure probe.

  TtkvClient follower_probe("127.0.0.1", follower.port());
  const api::ReplicateResult follower_status = follower_probe.Replicate("", 0, 0);
  EXPECT_TRUE(follower_status.follower);
  EXPECT_EQ(follower_status.leader_lsn, 1u);

  // The anonymous probes above must not have granted quorum standing.
  EXPECT_EQ(leader.replication_hub()->follower_count(), 1u);  // The real follower only.

  follower.Stop();
  leader.Stop();
}

// --- Snapshot bootstrap -----------------------------------------------------

TEST(ReplicaTest, BootstrapsFromSnapshotWhenLeaderLogIsTruncated) {
  TempDir leader_dir, follower_dir;
  uint64_t expected_puts = 0;
  {
    // Build the leader's dir offline with a tiny segment size, then
    // checkpoint with retained_snapshots = 1 so the log before the
    // snapshot is GONE — a fresh follower cannot catch up from records.
    persist::DurableOptions options;
    options.wal.segment_bytes = 256;
    options.retained_snapshots = 1;
    options.checkpoint_wal_bytes = 0;
    persist::DurableEngine engine(
        leader_dir.path,
        [](TTKV recovered) -> std::unique_ptr<api::Engine> {
          return std::make_unique<api::LocalEngine>(std::move(recovered));
        },
        options);
    for (int i = 0; i < 20; ++i) {
      api::Put(engine, "/seed/" + std::to_string(i), Value(int64_t{i}), Seconds(i + 1));
      ++expected_puts;
    }
    engine.Checkpoint();
  }

  TtkvServer leader(LeaderOptions(leader_dir.path));
  leader.Start();
  const uint64_t anchor = LastLsn(leader);
  ASSERT_EQ(anchor, 20u);

  TtkvServer follower(FollowerOptions(follower_dir.path, leader.port()));
  follower.Start();
  // The follower must have reseeded from the snapshot: recovery saw a
  // snapshot at the leader's checkpoint LSN and an empty log on top.
  EXPECT_EQ(Durable(follower).recovery().snapshot_lsn, anchor);
  EXPECT_EQ(Durable(follower).recovery().replayed, 0u);
  EXPECT_EQ(EngineImage(follower), EngineImage(leader));

  // Op-counter totals rode inside the snapshot (OCDS header), so STATS at
  // the follower reports lifetime totals, not zero.
  EXPECT_EQ(api::Stats(follower.engine()).puts, expected_puts);

  // And the live tail continues from the snapshot seam without a gap.
  TtkvClient client("127.0.0.1", leader.port());
  client.Put("/after/snapshot", Value("tail"), Seconds(100));
  WaitCaughtUp(leader, follower);
  EXPECT_EQ(api::GetAt(follower.engine(), "/after/snapshot", Seconds(100)), Value("tail"));
  EXPECT_EQ(EngineImage(follower), EngineImage(leader));

  follower.Stop();
  leader.Stop();
}

// --- Differential test: crash the follower at a random offset ---------------

// Applies a seeded random trace (puts, deletes, nested batches) through a
// client; explicit timestamps keep the trace deterministic.
void ApplyRandomTrace(TtkvClient& client, std::mt19937& rng, int ops, TimeMicros* clock) {
  std::uniform_int_distribution<int> kind(0, 9);
  std::uniform_int_distribution<int> key_id(0, 15);
  auto key = [&] { return "/trace/" + std::to_string(key_id(rng)); };
  for (int i = 0; i < ops; ++i) {
    *clock += Seconds(1);
    const int k = kind(rng);
    if (k < 6) {
      client.Put(key(), Value(static_cast<int64_t>(rng())), *clock);
    } else if (k < 8) {
      client.Delete(key(), *clock, (k == 7));
    } else {
      api::BatchCmd batch;
      batch.commands.push_back(api::PutCmd{key(), Value("batched"), *clock});
      api::BatchCmd nested;
      *clock += Seconds(1);
      nested.commands.push_back(api::DeleteCmd{key(), *clock, true});
      *clock += Seconds(1);
      nested.commands.push_back(api::PutCmd{key(), Value(3.5), *clock});
      batch.commands.push_back(std::move(nested));
      client.Apply(std::move(batch));
    }
  }
}

// Chops a random number of bytes off the end of the follower's newest WAL
// segment — the moral equivalent of kill -9 mid-write plus a torn page.
void TruncateNewestSegment(const std::string& dir, std::mt19937& rng) {
  std::vector<fs::path> segments;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.starts_with("wal-") && name.ends_with(".log")) segments.push_back(entry.path());
  }
  ASSERT_FALSE(segments.empty());
  std::sort(segments.begin(), segments.end());
  const fs::path& newest = segments.back();
  const uint64_t size = static_cast<uint64_t>(fs::file_size(newest));
  std::uniform_int_distribution<uint64_t> cut(0, size);
  fs::resize_file(newest, size - cut(rng));
}

TEST(ReplicaTest, CrashedFollowerResyncsToIdenticalState) {
  std::mt19937 rng(20260807);  // Seeded: failures must reproduce.
  TempDir leader_dir, follower_dir;
  TtkvServer leader(LeaderOptions(leader_dir.path));
  leader.Start();
  TtkvClient client("127.0.0.1", leader.port());
  TimeMicros clock = 0;

  for (int round = 0; round < 4; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    auto follower =
        std::make_unique<TtkvServer>(FollowerOptions(follower_dir.path, leader.port()));
    follower->Start();
    ApplyRandomTrace(client, rng, 40, &clock);
    WaitCaughtUp(leader, *follower);
    ASSERT_EQ(EngineImage(*follower), EngineImage(leader));

    // "Crash": destroy the server (no clean shutdown hook exists on
    // purpose), then tear bytes off its WAL tail. The next round's server
    // recovers from the damaged dir and must catch back up to byte
    // equality — re-pulling the truncated records from the leader.
    follower.reset();
    TruncateNewestSegment(follower_dir.path, rng);
  }

  leader.Stop();
}

// --- Quorum acks ------------------------------------------------------------

TEST(ReplicaTest, QuorumGateBlocksAcksUntilAFollowerCovers) {
  TempDir leader_dir, follower_dir;
  ServerOptions options = LeaderOptions(leader_dir.path);
  options.acks = "quorum";
  options.quorum_followers = 1;
  options.quorum_timeout_seconds = 0.3;
  TtkvServer leader(options);
  leader.Start();
  // The quorum deadlock guard: a gated mutation parks its event-loop
  // worker, so the daemon must keep at least one more loop free for the
  // follower's REPLICATE pulls.
  EXPECT_GE(leader.io_threads(), 2u);

  // No follower attached: the write must FAIL the ack — while staying
  // durable locally (the documented ambiguity).
  TtkvClient client("127.0.0.1", leader.port());
  try {
    client.Put("/q/a", Value(1), Seconds(1));
    FAIL() << "expected the quorum gate to time out";
  } catch (const StoreError& e) {
    EXPECT_NE(std::string(e.what()).find("quorum not reached"), std::string::npos) << e.what();
  }
  EXPECT_EQ(LastLsn(leader), 1u);  // Logged before the gate.

  TtkvServer follower(FollowerOptions(follower_dir.path, leader.port()));
  follower.Start();
  ASSERT_TRUE(WaitFor([&] { return leader.replication_hub()->follower_count() >= 1; }));

  // With a live follower the gate opens: the ack means "on disk in two
  // places".
  client.Put("/q/b", Value(2), Seconds(2));
  EXPECT_GE(leader.replication_hub()->QuorumAckedLsn(), 2u);
  WaitCaughtUp(leader, follower);
  EXPECT_EQ(api::GetAt(follower.engine(), "/q/b", Seconds(2)), Value(2));
  EXPECT_EQ(api::GetAt(follower.engine(), "/q/a", Seconds(1)), Value(1));  // Replicated late.

  follower.Stop();
  leader.Stop();
}

// --- Promotion --------------------------------------------------------------

TEST(ReplicaTest, PromotedFollowerAcceptsWritesAtTheNextLsn) {
  TempDir leader_dir, follower_dir;
  auto leader = std::make_unique<TtkvServer>(LeaderOptions(leader_dir.path));
  leader->Start();
  TtkvClient client("127.0.0.1", leader->port());
  client.Put("/pre/failover", Value("acked"), Seconds(1));
  client.Put("/pre/failover2", Value("acked2"), Seconds(2));

  TtkvServer follower(FollowerOptions(follower_dir.path, leader->port()));
  follower.Start();
  WaitCaughtUp(*leader, follower);
  const std::string leader_image = EngineImage(*leader);

  leader.reset();  // The leader "dies".

  TtkvClient promoter("127.0.0.1", follower.port());
  promoter.Promote();
  EXPECT_FALSE(follower.is_follower());
  EXPECT_EQ(EngineImage(follower), leader_image);  // Nothing lost, nothing invented.

  // PROMOTE is idempotent: a failover script may retry it.
  promoter.Promote();

  // The new leader assigns the NEXT LSN of the shipped stream and serves
  // mutations directly — no more NOT_LEADER.
  promoter.Put("/post/failover", Value("new-leader"), Seconds(3));
  EXPECT_EQ(LastLsn(follower), 3u);
  EXPECT_EQ(promoter.Get("/post/failover"), Value("new-leader"));
  const api::ReplicateResult status = promoter.Replicate("", 0, 0);
  EXPECT_FALSE(status.follower);

  follower.Stop();
}

}  // namespace
}  // namespace ocasta
