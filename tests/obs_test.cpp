// Tests for the observability subsystem (src/obs): histogram bucket math
// and percentile accuracy against an exact sort, concurrent recording,
// registry identity and kind rules, Prometheus exposition (golden output,
// escaping, non-finite values), the slow-op log's threshold and GCRA rate
// limiter under an injected clock, the METRICS wire round-trip, engine
// counter exactness against STATS on a quiesced engine, and the HTTP
// exporter's request handling.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "api/codec.h"
#include "api/engine.h"
#include "api/local_engine.h"
#include "api/remote_engine.h"
#include "common/error.h"
#include "common/rng.h"
#include "obs/histogram.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/slow_log.h"
#include "server/server.h"
#include "server/sharded_ttkv.h"

namespace ocasta {
namespace {

using obs::LatencyHistogram;

// --- Histogram ---------------------------------------------------------------

TEST(ObsHistogram, SmallValuesGetExactBuckets) {
  // Values below kSub land in one-value-wide buckets: index == value and
  // the upper bound is the value itself.
  for (uint64_t v = 0; v < LatencyHistogram::kSub; ++v) {
    EXPECT_EQ(LatencyHistogram::BucketIndex(v), v);
    EXPECT_EQ(LatencyHistogram::BucketUpperBound(v), v);
  }
}

TEST(ObsHistogram, BucketBoundsBracketTheValue) {
  // Every value sits at or below its bucket's upper bound, and the bound
  // overshoots by at most one sub-bucket width (1/kSub relative, ~3.1%).
  const uint64_t probes[] = {32,    33,   63,
                             64,    100,  1000,
                             4095,  4096, 1u << 20,
                             (1u << 20) + 7,     1000000000ull, 3000000000ull,
                             uint64_t{1} << 40,  uint64_t{1} << 62,
                             ~uint64_t{0}};
  for (const uint64_t v : probes) {
    const size_t index = LatencyHistogram::BucketIndex(v);
    ASSERT_LT(index, LatencyHistogram::kBuckets) << v;
    const uint64_t upper = LatencyHistogram::BucketUpperBound(index);
    EXPECT_GE(upper, v) << v;
    // Relative error bound; +1 covers integer truncation of the width.
    EXPECT_LE(static_cast<double>(upper),
              static_cast<double>(v) * (1.0 + 1.0 / LatencyHistogram::kSub) + 1.0)
        << v;
    // Bucket edges are consistent: the next bucket starts above `upper`.
    if (index + 1 < LatencyHistogram::kBuckets) {
      EXPECT_GT(LatencyHistogram::BucketUpperBound(index + 1), upper) << v;
    }
  }
}

TEST(ObsHistogram, OctaveBoundariesDoNotMisfile) {
  // First value of each octave must open a new bucket, not fall into the
  // previous octave's last one.
  for (size_t e = LatencyHistogram::kSubBits; e < 63; ++e) {
    const uint64_t first = uint64_t{1} << e;
    EXPECT_GT(LatencyHistogram::BucketIndex(first),
              LatencyHistogram::BucketIndex(first - 1))
        << "octave 2^" << e;
  }
}

TEST(ObsHistogram, PercentilesTrackExactSortWithin4Percent) {
  // Log-uniform values spanning ns..seconds, the shape latency data takes.
  Rng rng(7);
  LatencyHistogram hist;
  std::vector<uint64_t> values;
  values.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    const double exponent = 2.0 + 7.0 * rng.next_double();  // 1e2..1e9 ns.
    const auto v = static_cast<uint64_t>(std::pow(10.0, exponent));
    values.push_back(v);
    hist.Record(v);
  }
  std::sort(values.begin(), values.end());
  const obs::HistogramStats stats = hist.Snapshot();
  ASSERT_EQ(stats.count, values.size());
  EXPECT_EQ(static_cast<uint64_t>(stats.max), values.back());

  const auto exact = [&](double q) {
    return static_cast<double>(values[static_cast<size_t>(q * (values.size() - 1))]);
  };
  for (const auto& [q, est] : std::initializer_list<std::pair<double, double>>{
           {0.50, stats.p50}, {0.90, stats.p90}, {0.99, stats.p99}, {0.999, stats.p999}}) {
    // The estimate is the holding bucket's upper bound: never below the
    // true order statistic, at most one bucket width (3.125%) above it —
    // 4% gives slack for the rank interpolation at the edges.
    EXPECT_GE(est * 1.001, exact(q)) << "q=" << q;
    EXPECT_LE(est, exact(q) * 1.04 + 1.0) << "q=" << q;
  }
}

TEST(ObsHistogram, ConcurrentRecordersLoseNothing) {
  // Exactness under parallel recording: count and sum are exact, max is
  // the global max. Run under TSan this also proves the no-lock claim.
  LatencyHistogram hist;
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (uint64_t i = 1; i <= kPerThread; ++i) {
        hist.Record(i + static_cast<uint64_t>(t));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const obs::HistogramStats stats = hist.Snapshot();
  EXPECT_EQ(stats.count, kThreads * kPerThread);
  // Sum of i+t over all threads and i.
  double expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    expected_sum += (kPerThread * (kPerThread + 1)) / 2.0 + kPerThread * t;
  }
  EXPECT_DOUBLE_EQ(stats.sum, expected_sum);
  EXPECT_EQ(static_cast<uint64_t>(stats.max), kPerThread + kThreads - 1);
}

TEST(ObsHistogram, HotPathSamplerAlwaysTakesFirstCall) {
  obs::HotPathSampler sample;
  EXPECT_TRUE(sample());  // A single op must already yield a data point.
  int taken = 0;
  for (uint32_t i = 1; i < obs::kHotPathSamplePeriod; ++i) taken += sample() ? 1 : 0;
  EXPECT_EQ(taken, 0);
  EXPECT_TRUE(sample());  // Call #kHotPathSamplePeriod.
}

// --- Registry ----------------------------------------------------------------

TEST(ObsRegistry, LabelOrderDoesNotSplitIdentity) {
  obs::MetricsRegistry registry;
  obs::Counter& a = registry.GetCounter("c_total", {{"x", "1"}, {"y", "2"}});
  obs::Counter& b = registry.GetCounter("c_total", {{"y", "2"}, {"x", "1"}});
  EXPECT_EQ(&a, &b);
  obs::Counter& c = registry.GetCounter("c_total", {{"x", "1"}, {"y", "3"}});
  EXPECT_NE(&a, &c);
  a.Inc(5);
  const obs::MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  // Labels come back canonicalized (key-sorted) regardless of request order.
  EXPECT_EQ(snap.counters[0].labels, (obs::Labels{{"x", "1"}, {"y", "2"}}));
  EXPECT_EQ(snap.counters[0].value, 5u);
}

TEST(ObsRegistry, KindMismatchThrows) {
  obs::MetricsRegistry registry;
  registry.GetCounter("thing_total");
  EXPECT_THROW(registry.GetGauge("thing_total"), Error);
  EXPECT_THROW(registry.GetHistogram("thing_total"), Error);
  // Same name and kind is the same instrument, not an error.
  obs::Counter& again = registry.GetCounter("thing_total");
  again.Inc();
  EXPECT_EQ(registry.Snapshot().counters.at(0).value, 1u);
}

TEST(ObsRegistry, SnapshotIsSortedByNameThenLabels) {
  obs::MetricsRegistry registry;
  registry.GetCounter("zz_total");
  registry.GetCounter("aa_total", {{"op", "put"}});
  registry.GetCounter("aa_total", {{"op", "get"}});
  const obs::MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].name, "aa_total");
  EXPECT_EQ(snap.counters[0].labels, (obs::Labels{{"op", "get"}}));
  EXPECT_EQ(snap.counters[1].labels, (obs::Labels{{"op", "put"}}));
  EXPECT_EQ(snap.counters[2].name, "zz_total");
}

TEST(ObsRegistry, GaugeSetMaxRatchetsUpOnly) {
  obs::MetricsRegistry registry;
  obs::Gauge& g = registry.GetGauge("peak");
  g.SetMax(7);
  g.SetMax(3);
  EXPECT_EQ(g.value(), 7);
  g.SetMax(11);
  EXPECT_EQ(g.value(), 11);
}

// --- Prometheus exposition ---------------------------------------------------

TEST(ObsPrometheus, GoldenSnapshot) {
  obs::MetricsSnapshot snap;
  snap.counters.push_back({"ops_total", {{"op", "put"}}, 42});
  snap.gauges.push_back({"conns_live", {}, 3});
  snap.histograms.push_back(
      {"apply_ns", {{"op", "put"}}, obs::HistogramStats{.count = 10,
                                                        .sum = 1000.0,
                                                        .p50 = 90.0,
                                                        .p90 = 180.0,
                                                        .p99 = 198.0,
                                                        .p999 = 200.0,
                                                        .max = 200.0}});
  const std::string text = obs::WritePrometheusText(snap);
  EXPECT_EQ(text,
            "# TYPE ops_total counter\n"
            "ops_total{op=\"put\"} 42\n"
            "# TYPE conns_live gauge\n"
            "conns_live 3\n"
            "# TYPE apply_ns summary\n"
            "apply_ns{op=\"put\",quantile=\"0.5\"} 90\n"
            "apply_ns{op=\"put\",quantile=\"0.9\"} 180\n"
            "apply_ns{op=\"put\",quantile=\"0.99\"} 198\n"
            "apply_ns{op=\"put\",quantile=\"0.999\"} 200\n"
            "apply_ns_sum{op=\"put\"} 1000\n"
            "apply_ns_count{op=\"put\"} 10\n"
            "# TYPE apply_ns_max gauge\n"
            "apply_ns_max{op=\"put\"} 200\n");
}

TEST(ObsPrometheus, LabelValuesAreEscaped) {
  obs::MetricsSnapshot snap;
  snap.counters.push_back({"c_total", {{"k", "a\"b\\c\nd"}}, 1});
  const std::string text = obs::WritePrometheusText(snap);
  EXPECT_NE(text.find("c_total{k=\"a\\\"b\\\\c\\nd\"} 1\n"), std::string::npos) << text;
}

TEST(ObsPrometheus, HostileNamesAreSanitized) {
  EXPECT_EQ(obs::SanitizeMetricName("9bad name-total"), "_9bad_name_total");
  EXPECT_EQ(obs::SanitizeMetricName(""), "_");
  EXPECT_EQ(obs::SanitizeLabelName("op:kind"), "op_kind");
  obs::MetricsSnapshot snap;
  snap.gauges.push_back({"spaced out", {{"bad key", "v"}}, 2});
  const std::string text = obs::WritePrometheusText(snap);
  EXPECT_NE(text.find("spaced_out{bad_key=\"v\"} 2\n"), std::string::npos) << text;
}

TEST(ObsPrometheus, NonFiniteValuesRender) {
  EXPECT_EQ(obs::FormatPrometheusValue(std::nan("")), "NaN");
  EXPECT_EQ(obs::FormatPrometheusValue(HUGE_VAL), "+Inf");
  EXPECT_EQ(obs::FormatPrometheusValue(-HUGE_VAL), "-Inf");
  EXPECT_EQ(obs::FormatPrometheusValue(1.5), "1.5");
}

// --- Slow-op log -------------------------------------------------------------

TEST(ObsSlowLog, ZeroThresholdDisables) {
  obs::SlowOpLog log(0.0);
  EXPECT_FALSE(log.enabled());
  obs::SlowOpLog on(250.0);
  EXPECT_TRUE(on.enabled());
  EXPECT_DOUBLE_EQ(on.threshold_micros(), 250.0);
}

TEST(ObsSlowLog, FormatIsStableAndLeaksNoKeys) {
  obs::SlowOpRecord rec;
  rec.op = "PUT";
  rec.has_key = true;
  rec.key_hash = 0x1a2b3c4d5e6f7788ULL;
  rec.shard = 5;
  rec.bytes = 64;
  rec.conn_fd = 12;
  rec.total_us = 1834.21;
  rec.queue_us = 210.44;
  rec.apply_us = 96.01;
  rec.wal_us = 1502.12;
  EXPECT_EQ(obs::SlowOpLog::Format(rec),
            "slow_op op=PUT key=1a2b3c4d5e6f7788 shard=5 bytes=64 conn=12 "
            "total_us=1834.2 queue_us=210.4 apply_us=96.0 wal_us=1502.1");
  // Cross-shard ops carry no key: hash and shard render as "-".
  obs::SlowOpRecord crossshard;
  crossshard.op = "STATS";
  EXPECT_EQ(obs::SlowOpLog::Format(crossshard),
            "slow_op op=STATS key=- shard=- bytes=0 conn=-1 "
            "total_us=0.0 queue_us=0.0 apply_us=0.0 wal_us=0.0");
}

TEST(ObsSlowLog, GcraAdmitsBurstThenRefillsOverTime) {
  // Injected clock: a flood at t=0 gets exactly one second's burst (rate
  // lines), everything else is suppressed; a full second later one slot
  // has refilled.
  int64_t now_ns = 0;
  std::vector<std::string> lines;
  obs::SlowOpLog log(
      1.0, /*max_lines_per_sec=*/10.0,
      [&lines](const std::string& line) { lines.push_back(line); },
      [&now_ns] { return now_ns; });
  obs::SlowOpRecord rec;
  rec.op = "PUT";
  for (int i = 0; i < 100; ++i) log.Log(rec);
  EXPECT_EQ(log.logged(), 10u);
  EXPECT_EQ(log.suppressed(), 90u);
  EXPECT_EQ(lines.size(), 10u);

  now_ns += 99'999'999;  // Just shy of one 10-per-second slot.
  EXPECT_FALSE(log.Log(rec));
  now_ns += 1;  // Exactly one slot refilled.
  EXPECT_TRUE(log.Log(rec));
  EXPECT_FALSE(log.Log(rec));
  EXPECT_EQ(log.logged(), 11u);

  now_ns += 2'000'000'000;  // A long quiet spell refills at most the burst.
  for (int i = 0; i < 100; ++i) log.Log(rec);
  EXPECT_EQ(log.logged(), 21u);
}

// --- METRICS wire round-trip -------------------------------------------------

TEST(ObsWire, MetricsCommandAndResultRoundTrip) {
  const api::Command cmd{api::MetricsCmd{}};
  const api::Command decoded_cmd = api::DecodeCommand(api::EncodeCommand(cmd));
  EXPECT_TRUE(std::holds_alternative<api::MetricsCmd>(decoded_cmd.op));

  api::MetricsResult result;
  result.snapshot.counters.push_back({"ops_total", {{"op", "put"}}, 42});
  result.snapshot.counters.push_back({"wal_records_total", {}, 7});
  result.snapshot.gauges.push_back({"conns_live", {{"loop", "0"}}, -3});
  result.snapshot.histograms.push_back(
      {"apply_ns",
       {{"op", "get"}, {"shard", "2"}},
       obs::HistogramStats{.count = 1234,
                           .sum = 5.5e6,
                           .p50 = 100.0,
                           .p90 = 400.0,
                           .p99 = 900.0,
                           .p999 = 1500.0,
                           .max = 2000.0}});
  const api::Result decoded = api::DecodeResult(api::EncodeResult(api::Result{result}));
  const auto* metrics = std::get_if<api::MetricsResult>(&decoded.op);
  ASSERT_NE(metrics, nullptr);
  EXPECT_EQ(metrics->snapshot, result.snapshot);
}

TEST(ObsWire, EmptySnapshotRoundTrips) {
  const api::Result decoded =
      api::DecodeResult(api::EncodeResult(api::Result{api::MetricsResult{}}));
  const auto* metrics = std::get_if<api::MetricsResult>(&decoded.op);
  ASSERT_NE(metrics, nullptr);
  EXPECT_TRUE(metrics->snapshot.empty());
}

// --- Engine integration ------------------------------------------------------

TEST(ObsEngine, QuiescedStatsMatchMetricsCountersExactly) {
  // The EngineStats freshness contract (api/types.h): on a quiesced
  // engine the STATS op totals equal the ocasta_engine_ops_total metrics
  // counters exactly — both through the single-command path and the
  // batched path.
  obs::MetricsRegistry registry;
  ShardedTtkv engine(4, 1.0, &registry);
  for (int i = 0; i < 17; ++i) {
    engine.Apply(api::Command{api::PutCmd{"k" + std::to_string(i), Value(i), Seconds(i + 1)}});
  }
  for (int i = 0; i < 11; ++i) {
    engine.Apply(api::Command{api::GetCmd{"k" + std::to_string(i)}});
  }
  engine.Apply(api::Command{api::DeleteCmd{"k0", Seconds(100)}});
  std::vector<api::Command> batch;
  for (int i = 0; i < 9; ++i) {
    batch.emplace_back(api::PutCmd{"b" + std::to_string(i), Value(i), Seconds(i + 200)});
    batch.emplace_back(api::GetCmd{"k1"});
  }
  batch.emplace_back(api::DeleteCmd{"k2", Seconds(300)});
  engine.Apply(api::Command{api::BatchCmd{std::move(batch)}});

  const EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.puts, 26u);
  EXPECT_EQ(stats.gets, 20u);
  EXPECT_EQ(stats.deletes, 2u);
  const obs::MetricsSnapshot snap = registry.Snapshot();
  const auto counter = [&](const char* op) -> uint64_t {
    for (const auto& c : snap.counters) {
      if (c.name == "ocasta_engine_ops_total" && c.labels == obs::Labels{{"op", op}}) {
        return c.value;
      }
    }
    return ~uint64_t{0};
  };
  EXPECT_EQ(counter("put"), stats.puts);
  EXPECT_EQ(counter("get"), stats.gets);
  EXPECT_EQ(counter("delete"), stats.deletes);
}

TEST(ObsEngine, LocalEngineCountersMatchStatsToo) {
  obs::MetricsRegistry registry;
  api::LocalEngine engine(
      api::LocalEngine::Options{.cluster_window_seconds = 1.0, .metrics = &registry});
  engine.Apply(api::Command{api::PutCmd{"a", Value(1), Seconds(1)}});
  engine.Apply(api::Command{api::PutCmd{"b", Value(2), Seconds(2)}});
  engine.Apply(api::Command{api::GetCmd{"a"}});
  engine.Apply(api::Command{api::DeleteCmd{"a", Seconds(3)}});
  const EngineStats stats = api::Stats(engine);
  const obs::MetricsSnapshot snap = api::Metrics(engine);
  for (const auto& c : snap.counters) {
    if (c.name != "ocasta_engine_ops_total") continue;
    const std::string& op = c.labels.at(0).second;
    if (op == "put") {
      EXPECT_EQ(c.value, stats.puts);
    } else if (op == "get") {
      EXPECT_EQ(c.value, stats.gets);
    } else if (op == "delete") {
      EXPECT_EQ(c.value, stats.deletes);
    }
  }
  EXPECT_EQ(stats.puts, 2u);
  EXPECT_EQ(stats.gets, 1u);
  EXPECT_EQ(stats.deletes, 1u);
}

TEST(ObsEngine, MetricsOpOverTheWire) {
  // METRICS through the daemon: protocol v4 end to end, and the apply
  // histograms must hold real measurements after traffic.
  TtkvServer server(ServerOptions{.port = 0,
                                  .num_shards = 4,
                                  .metrics = std::make_shared<obs::MetricsRegistry>()});
  server.Start();
  api::RemoteEngine remote("127.0.0.1", server.port());
  for (int i = 0; i < 40; ++i) {
    remote.Apply(api::Command{api::PutCmd{"w" + std::to_string(i), Value(i), Seconds(i + 1)}});
  }
  remote.Apply(api::Command{api::GetCmd{"w0"}});

  const obs::MetricsSnapshot snap = api::Metrics(remote);
  uint64_t puts = 0;
  for (const auto& c : snap.counters) {
    if (c.name == "ocasta_engine_ops_total" && c.labels == obs::Labels{{"op", "put"}}) {
      puts = c.value;
    }
  }
  EXPECT_EQ(puts, 40u);
  bool saw_apply_hist = false;
  for (const auto& h : snap.histograms) {
    if (h.name == "ocasta_engine_apply_ns" && h.labels == obs::Labels{{"op", "put"}}) {
      saw_apply_hist = true;
      // Latency is sampled 1-in-N but the first call always records, so
      // 40 puts guarantee at least ceil(40/N) points.
      EXPECT_GE(h.stats.count, 40 / obs::kHotPathSamplePeriod);
      EXPECT_GT(h.stats.max, 0.0);
    }
  }
  EXPECT_TRUE(saw_apply_hist);
  server.Stop();
}

TEST(ObsEngine, MetricsOnUnconfiguredEngineIsEmptyNotError) {
  ShardedTtkv engine(2);
  const obs::MetricsSnapshot snap = api::Metrics(engine);
  EXPECT_TRUE(snap.empty());
}

// --- HTTP exporter -----------------------------------------------------------

// Minimal scrape client: one request, read to EOF (the exporter closes
// after each response).
std::string HttpRequest(uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) response.append(buf, static_cast<size_t>(n));
  ::close(fd);
  return response;
}

TEST(ObsHttp, GetScrapesHeadOmitsBodyOthersRejected) {
  obs::MetricsHttpServer exporter(0, [] { return std::string("metric_a 1\n"); });
  exporter.Start();
  ASSERT_GT(exporter.port(), 0);

  const std::string get = HttpRequest(exporter.port(), "GET /metrics HTTP/1.1\r\n\r\n");
  EXPECT_NE(get.find("200"), std::string::npos) << get;
  EXPECT_NE(get.find("text/plain; version=0.0.4"), std::string::npos) << get;
  EXPECT_NE(get.find("metric_a 1\n"), std::string::npos) << get;

  const std::string head = HttpRequest(exporter.port(), "HEAD /metrics HTTP/1.1\r\n\r\n");
  EXPECT_NE(head.find("200"), std::string::npos) << head;
  EXPECT_EQ(head.find("metric_a"), std::string::npos) << head;

  const std::string post =
      HttpRequest(exporter.port(), "POST /metrics HTTP/1.1\r\n\r\nmetric_a 9\n");
  EXPECT_NE(post.find("405"), std::string::npos) << post;

  EXPECT_GE(exporter.scrapes(), 2u);
  exporter.Stop();
  exporter.Stop();  // Idempotent.
}

// An ephemeral port the OS just handed out and we released — the usual
// probe for "some free port" when an option cannot express port 0.
uint16_t ProbeFreePort() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  ::close(fd);
  return ntohs(addr.sin_port);
}

TEST(ObsHttp, EndToEndScrapeThroughServerOptions) {
  // The full daemon path: setting only metrics_port auto-creates the
  // registry, and a scrape after traffic carries the engine histograms.
  TtkvServer server(
      ServerOptions{.port = 0, .num_shards = 4, .metrics_port = ProbeFreePort()});
  server.Start();
  ASSERT_NE(server.metrics(), nullptr);
  ASSERT_GT(server.metrics_port(), 0);
  api::RemoteEngine remote("127.0.0.1", server.port());
  for (int i = 0; i < 20; ++i) {
    remote.Apply(api::Command{api::PutCmd{"s" + std::to_string(i), Value(i), Seconds(i + 1)}});
  }
  const std::string scrape =
      HttpRequest(server.metrics_port(), "GET /metrics HTTP/1.1\r\n\r\n");
  EXPECT_NE(scrape.find("200"), std::string::npos);
  EXPECT_NE(scrape.find("# TYPE ocasta_engine_apply_ns summary"), std::string::npos);
  EXPECT_NE(scrape.find("ocasta_engine_ops_total{op=\"put\"} 20"), std::string::npos);
  EXPECT_NE(scrape.find("ocasta_loop_connections_live"), std::string::npos);
  server.Stop();
}

TEST(ObsServer, NoMetricsPortMeansNoListener) {
  TtkvServer server(ServerOptions{.port = 0, .num_shards = 2});
  server.Start();
  EXPECT_EQ(server.metrics_port(), 0);
  EXPECT_EQ(server.metrics(), nullptr);
  server.Stop();
}

}  // namespace
}  // namespace ocasta
