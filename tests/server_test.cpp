// End-to-end tests for the ocastad daemon: wire framing, HELLO version
// negotiation, every protocol-v2 op through TtkvClient, single-frame BATCH
// commands, error replies, concurrent clients, reconnect-once semantics,
// graceful shutdown from both sides, and the RemoteStore ConfigStore
// backend driving the interception layer over the network.
#include "server/server.h"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <thread>

#include "api/codec.h"
#include "api/remote_engine.h"
#include "client/remote_store.h"
#include "client/ttkv_client.h"
#include "configstore/intercepting_store.h"
#include "logger/recorder.h"
#include "server/wire.h"
#include "ttkv/serialize.h"

namespace ocasta {
namespace {

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<TtkvServer>(ServerOptions{.port = 0, .num_shards = 4});
    server_->Start();
  }
  void TearDown() override { server_->Stop(); }

  TtkvClient MakeClient() { return TtkvClient("127.0.0.1", server_->port()); }

  std::unique_ptr<TtkvServer> server_;
};

TEST_F(ServerTest, PingAndEphemeralPort) {
  EXPECT_GT(server_->port(), 0);
  TtkvClient client = MakeClient();
  client.Ping();
  EXPECT_TRUE(client.connected());
}

TEST_F(ServerTest, PutGetDeleteHistoryRoundTrip) {
  TtkvClient client = MakeClient();
  client.Put("/apps/term/shell", Value("zsh"), Seconds(1));
  client.Put("/apps/term/shell", Value("bash"), Seconds(2));
  client.Put("/apps/term/cols", Value(80), Seconds(3));

  EXPECT_EQ(client.Get("/apps/term/shell"), Value("bash"));
  EXPECT_EQ(client.GetAt("/apps/term/shell", Seconds(1)), Value("zsh"));
  EXPECT_EQ(client.Get("/nope"), std::nullopt);

  EXPECT_TRUE(client.Delete("/apps/term/cols", Seconds(4)));
  EXPECT_FALSE(client.Delete("/apps/term/cols", Seconds(5)));

  const auto record = client.History("/apps/term/shell");
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->key, "/apps/term/shell");
  EXPECT_EQ(record->write_count, 2u);
  ASSERT_EQ(record->versions.size(), 2u);
  EXPECT_EQ(record->versions[0].value, Value("zsh"));
  EXPECT_EQ(record->versions[1].value, Value("bash"));
  EXPECT_FALSE(client.History("/nope").has_value());
}

TEST_F(ServerTest, AllValueTypesSurviveTheWire) {
  TtkvClient client = MakeClient();
  const std::vector<Value> values = {
      Value(true), Value(static_cast<int64_t>(-7)), Value(3.25), Value("text"),
      Value(std::vector<std::string>{"a", "b", "c"})};
  for (size_t i = 0; i < values.size(); ++i) {
    client.Put("type/key" + std::to_string(i), values[i], Seconds(static_cast<double>(i + 1)));
  }
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(client.Get("type/key" + std::to_string(i)), values[i]);
  }
}

TEST_F(ServerTest, StatsListKeysSnapshotCompact) {
  TtkvClient client = MakeClient();
  client.Put("/a/one", Value(1), Seconds(10));
  client.Put("/a/two", Value(2), Seconds(20));
  client.Put("/a/one", Value(11), Seconds(30));
  client.Get("/a/one");

  const EngineStats stats = client.Stats();
  EXPECT_EQ(stats.ttkv.num_keys, 2u);
  EXPECT_EQ(stats.ttkv.writes, 3u);
  EXPECT_EQ(stats.ttkv.reads, 1u);
  EXPECT_EQ(stats.num_shards, 4u);
  EXPECT_EQ(stats.puts, 3u);

  EXPECT_EQ(client.ListKeys("/a/"), (std::vector<std::string>{"/a/one", "/a/two"}));

  const TTKV snapshot = client.Snapshot();
  EXPECT_EQ(snapshot.num_keys(), 2u);
  EXPECT_EQ(snapshot.latest("/a/one"), Value(11));
  EXPECT_EQ(snapshot.value_at("/a/one", Seconds(15)), Value(1));

  EXPECT_EQ(client.Compact(Seconds(35)), 1u);  // /a/one's first version.
  EXPECT_EQ(client.Snapshot().record("/a/one").versions.size(), 1u);
}

TEST_F(ServerTest, ClusterNowOverTheWire) {
  TtkvClient client = MakeClient();
  for (int burst = 0; burst < 3; ++burst) {
    const TimeMicros t = Seconds(100 * (burst + 1));
    client.Put("net/a", Value(burst), t);
    client.Put("net/b", Value(burst), t + Seconds(0.3));
  }
  const auto clusters = client.ClusterNow(1.5, Linkage::kComplete);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].keys, (std::vector<std::string>{"net/a", "net/b"}));
  EXPECT_GE(clusters[0].version_count, 2u);
}

TEST_F(ServerTest, PipelinedBatches) {
  TtkvClient client = MakeClient();
  std::vector<std::pair<std::string, Value>> entries;
  std::vector<std::string> keys;
  for (int i = 0; i < 64; ++i) {
    keys.push_back("batch/key" + std::to_string(i));
    entries.emplace_back(keys.back(), Value(i));
  }
  client.PutBatch(entries, Seconds(1));
  const auto values = client.GetBatch(keys);
  ASSERT_EQ(values.size(), keys.size());
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(values[i].has_value());
    EXPECT_EQ(*values[i], Value(i));
  }
  EXPECT_EQ(client.Stats().puts, 64u);
}

TEST_F(ServerTest, ServerErrorsSurfaceAsStoreError) {
  TtkvClient client = MakeClient();
  EXPECT_THROW(client.Put("", Value(1)), StoreError);  // Engine rejects empty keys.
  client.Ping();                                       // Connection survives the error.
}

TEST_F(ServerTest, MalformedRequestsGetErrorReplies) {
  const auto is_error_reply = [](const std::string& reply) {
    return !reply.empty() && static_cast<uint8_t>(reply[0]) ==
                                 static_cast<uint8_t>(api::ResultTag::kError);
  };
  const int fd = ConnectTcp("127.0.0.1", server_->port());

  // Unknown op tag.
  SendFrame(fd, std::string(1, '\x63'));
  auto reply = RecvFrame(fd);
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(is_error_reply(*reply));

  // Truncated PUT body (key length prefix promises more bytes than sent).
  BinaryWriter w;
  w.u8(static_cast<uint8_t>(api::OpTag::kPut));
  w.u32(1000);
  SendFrame(fd, w.buffer());
  reply = RecvFrame(fd);
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(is_error_reply(*reply));

  // Trailing bytes after a well-formed request.
  BinaryWriter w2;
  w2.u8(static_cast<uint8_t>(api::OpTag::kPing));
  w2.str("junk");
  SendFrame(fd, w2.buffer());
  reply = RecvFrame(fd);
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(is_error_reply(*reply));

  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
}

TEST_F(ServerTest, HelloNegotiatesProtocolVersion) {
  // TtkvClient performs HELLO on Connect and records the outcome.
  TtkvClient client = MakeClient();
  client.Ping();
  EXPECT_EQ(client.protocol_version(), api::kProtocolVersion);

  // A raw HELLO with a too-old version is rejected with an error reply;
  // the connection stays usable for a fresh, acceptable HELLO.
  const int fd = ConnectTcp("127.0.0.1", server_->port());
  SendFrame(fd, api::EncodeHello(1));
  auto reply = RecvFrame(fd);
  ASSERT_TRUE(reply.has_value());
  EXPECT_THROW(api::DecodeHelloReply(*reply), StoreError);

  // A newer client negotiates down to the daemon's version.
  SendFrame(fd, api::EncodeHello(api::kProtocolVersion + 7));
  reply = RecvFrame(fd);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(api::DecodeHelloReply(*reply), api::kProtocolVersion);

  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
}

TEST_F(ServerTest, BatchCommandOverTheWire) {
  TtkvClient client = MakeClient();
  api::BatchCmd batch;
  batch.commands.push_back(api::PutCmd{"wire/a", Value(1), Seconds(1)});
  batch.commands.push_back(api::PutCmd{"wire/b", Value(2), Seconds(2)});
  batch.commands.push_back(api::GetCmd{"wire/a"});
  batch.commands.push_back(api::DeleteCmd{"wire/b", Seconds(3), false});
  batch.commands.push_back(api::PutCmd{"", Value(0), 0});  // Fails; siblings unaffected.
  batch.commands.push_back(api::HistoryCmd{"wire/b"});

  const auto results =
      api::Expect<api::BatchResult>(client.Apply(batch), "BATCH").results;
  ASSERT_EQ(results.size(), 6u);
  EXPECT_TRUE(std::holds_alternative<api::OkResult>(results[0].op));
  EXPECT_TRUE(std::holds_alternative<api::OkResult>(results[1].op));
  EXPECT_EQ(std::get<api::ValueResult>(results[2].op).value, Value(1));
  EXPECT_TRUE(std::get<api::ExistedResult>(results[3].op).existed);
  EXPECT_TRUE(std::holds_alternative<api::ErrorResult>(results[4].op));
  const auto& record = std::get<api::HistoryResult>(results[5].op).record;
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->key, "wire/b");
  EXPECT_EQ(record->delete_count, 1u);
}

// The regression the reconnect contract promises: a daemon restart is
// survived by exactly one transparent reconnect, and a second transport
// failure surfaces as a clean WireError instead of a hang or a retry loop.
TEST(ClientReconnectTest, ReconnectsOnceThenFailsCleanly) {
  auto first = std::make_unique<TtkvServer>(ServerOptions{.port = 0, .num_shards = 2});
  first->Start();
  const uint16_t port = first->port();

  TtkvClient client("127.0.0.1", port);
  client.Ping();
  EXPECT_EQ(first->connections_served(), 1u);
  first->Stop();
  first.reset();

  // Daemon comes back on the same port: the next RPC reconnects
  // transparently — the restarted daemon sees exactly one connection.
  TtkvServer second(ServerOptions{.port = port, .num_shards = 2});
  second.Start();
  client.Put("reconnect/key", Value(42), Seconds(1));
  EXPECT_EQ(client.Get("reconnect/key"), Value(42));
  EXPECT_EQ(second.connections_served(), 1u);

  // Daemon gone for good: the retry's reconnect also fails, so the RPC
  // must raise WireError promptly (one reconnect attempt, no hang).
  second.Stop();
  EXPECT_THROW(client.Ping(), WireError);
}

TEST_F(ServerTest, ConcurrentClientsSeeConsistentTotals) {
  constexpr int kClients = 6;
  constexpr int kOpsPerClient = 200;
  std::vector<std::thread> threads;
  for (int id = 0; id < kClients; ++id) {
    threads.emplace_back([&, id] {
      TtkvClient client("127.0.0.1", server_->port());
      for (int i = 0; i < kOpsPerClient; ++i) {
        const std::string key = "conc/key" + std::to_string((id * 7 + i) % 23);
        client.Put(key, Value(id));
        client.Get(key);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  TtkvClient client = MakeClient();
  const EngineStats stats = client.Stats();
  EXPECT_EQ(stats.puts, static_cast<uint64_t>(kClients) * kOpsPerClient);
  EXPECT_EQ(stats.gets, static_cast<uint64_t>(kClients) * kOpsPerClient);
  EXPECT_EQ(stats.ttkv.num_keys, 23u);
}

TEST_F(ServerTest, ClientShutdownOpStopsTheServer) {
  TtkvClient client = MakeClient();
  client.Put("k", Value(1), Seconds(1));
  client.Shutdown();
  server_->Wait();  // Returns because the client asked for shutdown.
  EXPECT_THROW(TtkvClient("127.0.0.1", server_->port()).Ping(), WireError);
}

// --- RemoteStore ------------------------------------------------------------

TEST_F(ServerTest, RemoteStoreRoundTrip) {
  TtkvClient client = MakeClient();
  api::RemoteEngine engine(client);
  RemoteStore store(engine);

  EXPECT_EQ(store.kind(), StoreKind::kGconf);
  EXPECT_EQ(store.Read("/apps/x"), std::nullopt);
  store.Write("/apps/x", Value(5));
  store.Write("/apps/y", Value("on"));
  EXPECT_EQ(store.Read("/apps/x"), Value(5));
  EXPECT_EQ(store.ListKeys("/apps/"), (std::vector<std::string>{"/apps/x", "/apps/y"}));
  EXPECT_TRUE(store.Remove("/apps/y"));
  EXPECT_FALSE(store.Remove("/apps/y"));
  EXPECT_EQ(store.Read("/apps/y"), std::nullopt);

  // History is preserved daemon-side even after Remove.
  const auto record = client.History("/apps/y");
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->delete_count, 1u);
}

TEST_F(ServerTest, RemoteStoreSnapshotAndRestore) {
  TtkvClient client = MakeClient();
  api::RemoteEngine engine(client);
  RemoteStore store(engine);
  store.Write("/cfg/a", Value(1));
  store.Write("/cfg/b", Value(2));
  const ConfigMap saved = store.Snapshot();
  ASSERT_EQ(saved.size(), 2u);

  store.Write("/cfg/a", Value(99));
  store.Write("/cfg/extra", Value("drop me"));
  store.Remove("/cfg/b");

  store.RestoreSnapshot(saved);
  EXPECT_EQ(store.Read("/cfg/a"), Value(1));
  EXPECT_EQ(store.Read("/cfg/b"), Value(2));
  EXPECT_EQ(store.Read("/cfg/extra"), std::nullopt);
  EXPECT_EQ(store.Snapshot(), saved);
}

// The interception decorator works over the network backend unchanged: a
// local TtkvRecorder observes the same accesses the daemon records.
TEST_F(ServerTest, InterceptionLayerOverRemoteStore) {
  TtkvClient client = MakeClient();
  api::RemoteEngine engine(client);
  RemoteStore backing(engine);
  SimClock clock(Seconds(100));
  TTKV local;
  TtkvRecorder recorder(local);
  InterceptingStore store(backing, "editor", clock, &recorder);

  store.Write("/editor/font", Value("mono"));
  clock.advance(Seconds(1));
  store.Write("/editor/size", Value(12));
  clock.advance(Seconds(1));
  store.Read("/editor/font");
  store.Remove("/editor/size");

  // Local recorder saw everything...
  EXPECT_EQ(local.num_keys(), 2u);
  EXPECT_EQ(local.record("/editor/size").delete_count, 1u);
  // ...and so did the daemon.
  const EngineStats stats = client.Stats();
  EXPECT_EQ(stats.puts, 2u);
  EXPECT_EQ(stats.deletes, 1u);
  EXPECT_EQ(client.Get("/editor/font"), Value("mono"));
}

// Wire-level framing sanity: oversized length prefixes are rejected.
TEST(WireTest, OversizedFrameRejected) {
  const int listen_fd = ListenLoopback(0);
  const uint16_t port = BoundPort(listen_fd);
  const int sender = ConnectTcp("127.0.0.1", port);
  const int receiver = ::accept(listen_fd, nullptr, nullptr);
  ASSERT_GE(receiver, 0);

  const char bogus_header[4] = {'\xff', '\xff', '\xff', '\xff'};  // 4 GiB frame.
  ASSERT_EQ(::send(sender, bogus_header, 4, 0), 4);
  EXPECT_THROW(RecvFrame(receiver), WireError);

  ::close(sender);
  ::close(receiver);
  ::close(listen_fd);
}

TEST(WireTest, FrameRoundTripAndCleanEof) {
  const int listen_fd = ListenLoopback(0);
  const uint16_t port = BoundPort(listen_fd);
  const int sender = ConnectTcp("127.0.0.1", port);
  const int receiver = ::accept(listen_fd, nullptr, nullptr);
  ASSERT_GE(receiver, 0);

  SendFrame(sender, "hello");
  SendFrame(sender, "");  // Empty frames are legal.
  auto frame = RecvFrame(receiver);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(*frame, "hello");
  frame = RecvFrame(receiver);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(*frame, "");

  ::close(sender);
  EXPECT_EQ(RecvFrame(receiver), std::nullopt);  // EOF at a frame boundary.
  ::close(receiver);
  ::close(listen_fd);
}

}  // namespace
}  // namespace ocasta
