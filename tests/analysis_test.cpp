#include <gtest/gtest.h>

#include "analysis/ground_truth.h"
#include "analysis/stats.h"
#include "apps/catalog.h"
#include "clustering/engine.h"

namespace ocasta {
namespace {

// A small schema with one related pair, one fake (coincidence) pair and a
// single.
AppSchema MiniSchema() {
  AppSchema app;
  app.name = "Mini";
  app.store = StoreKind::kGconf;
  SchemaGroup related;
  related.name = "pair";
  related.keys = {KeySpec{.path = "/a/x"}, KeySpec{.path = "/a/y"}, KeySpec{.path = "/a/z"}};
  app.groups.push_back(related);
  SchemaGroup fake;
  fake.name = "fake";
  fake.related = false;
  fake.keys = {KeySpec{.path = "/f/1"}, KeySpec{.path = "/f/2"}};
  app.groups.push_back(fake);
  SchemaGroup single;
  single.name = "single";
  single.keys = {KeySpec{.path = "/s/only"}};
  app.groups.push_back(single);
  app.readonly_keys.push_back(KeySpec{.path = "/r/static"});
  return app;
}

TEST(GroundTruth, RelatedGroupsShareIds) {
  const GroundTruth truth = GroundTruth::FromSchema(MiniSchema());
  EXPECT_EQ(truth.GroupOf("/a/x"), truth.GroupOf("/a/y"));
  EXPECT_EQ(truth.GroupOf("/a/x"), truth.GroupOf("/a/z"));
  EXPECT_NE(truth.GroupOf("/a/x"), truth.GroupOf("/s/only"));
  // Coincidence-group keys are NOT related to each other.
  EXPECT_NE(truth.GroupOf("/f/1"), truth.GroupOf("/f/2"));
  // Unknown keys never match anything (including each other).
  EXPECT_NE(truth.GroupOf("/unknown/1"), truth.GroupOf("/unknown/2"));
}

TEST(GroundTruth, AllRelatedJudgements) {
  const GroundTruth truth = GroundTruth::FromSchema(MiniSchema());
  EXPECT_TRUE(truth.AllRelated({"/a/x", "/a/y"}));
  EXPECT_TRUE(truth.AllRelated({"/a/x", "/a/y", "/a/z"}));
  EXPECT_FALSE(truth.AllRelated({"/a/x", "/f/1"}));
  EXPECT_FALSE(truth.AllRelated({"/f/1", "/f/2"}));
  EXPECT_TRUE(truth.AllRelated({"/s/only"}));  // Singleton trivially related.
}

TEST(GroundTruth, GroupMembers) {
  const GroundTruth truth = GroundTruth::FromSchema(MiniSchema());
  EXPECT_EQ(truth.GroupMembers("/a/x").size(), 3u);
  EXPECT_TRUE(truth.GroupMembers("/s/only").empty());
}

TTKV MiniTtkv() {
  TTKV ttkv;
  // The related trio always together; the fake pair always together; the
  // single on its own.
  for (int burst = 0; burst < 3; ++burst) {
    const TimeMicros t = Seconds(1000 * burst);
    ttkv.record_write("/a/x", Value(burst), t);
    ttkv.record_write("/a/y", Value(burst), t);
    ttkv.record_write("/a/z", Value(burst), t);
    ttkv.record_write("/f/1", Value(burst), t + Seconds(100));
    ttkv.record_write("/f/2", Value(burst), t + Seconds(100));
    ttkv.record_write("/s/only", Value(burst), t + Seconds(200));
  }
  ttkv.record_reads("/r/static", 10);
  return ttkv;
}

TEST(EvaluateClusters, CountsCorrectAndOversized) {
  const AppSchema schema = MiniSchema();
  const GroundTruth truth = GroundTruth::FromSchema(schema);
  const TTKV ttkv = MiniTtkv();
  const ClusterSet clusters = ClusterKeys(ttkv, ClusteringParams{});
  const AccuracyReport report = EvaluateClusters("Mini", clusters, ttkv, truth);

  EXPECT_EQ(report.keys_accessed, 7u);  // Incl. read-only key.
  EXPECT_EQ(report.multi_clusters, 2u);
  EXPECT_EQ(report.correct_multi, 1u);  // The trio; the fake pair is oversized.
  EXPECT_EQ(report.oversized, 1u);
  EXPECT_EQ(report.undersized, 0u);
  EXPECT_DOUBLE_EQ(report.accuracy(), 0.5);
}

TEST(EvaluateClusters, UndersizedIsCorrectButFlagged) {
  const AppSchema schema = MiniSchema();
  const GroundTruth truth = GroundTruth::FromSchema(schema);
  // x and y together, z separately: the {x,y} cluster is a correct subset.
  TTKV ttkv;
  for (int burst = 0; burst < 3; ++burst) {
    ttkv.record_write("/a/x", Value(burst), Seconds(1000 * burst));
    ttkv.record_write("/a/y", Value(burst), Seconds(1000 * burst));
    ttkv.record_write("/a/z", Value(burst), Seconds(1000 * burst + 500));
  }
  const ClusterSet clusters = ClusterKeys(ttkv, ClusteringParams{});
  const AccuracyReport report = EvaluateClusters("Mini", clusters, ttkv, truth);
  EXPECT_EQ(report.multi_clusters, 1u);
  EXPECT_EQ(report.correct_multi, 1u);
  EXPECT_EQ(report.undersized, 1u);
  ASSERT_EQ(report.judgements.size(), 1u);
  EXPECT_EQ(report.judgements[0].verdict, ClusterVerdict::kUndersized);
}

TEST(EvaluateClusters, ExactWhenAllModifiedMembersPresent) {
  const AppSchema schema = MiniSchema();
  const GroundTruth truth = GroundTruth::FromSchema(schema);
  // Only x and y are ever modified; z untouched. {x,y} counts as exact.
  TTKV ttkv;
  for (int burst = 0; burst < 2; ++burst) {
    ttkv.record_write("/a/x", Value(burst), Seconds(1000 * burst));
    ttkv.record_write("/a/y", Value(burst), Seconds(1000 * burst));
  }
  const ClusterSet clusters = ClusterKeys(ttkv, ClusteringParams{});
  const AccuracyReport report = EvaluateClusters("Mini", clusters, ttkv, truth);
  ASSERT_EQ(report.judgements.size(), 1u);
  EXPECT_EQ(report.judgements[0].verdict, ClusterVerdict::kExact);
}

// ----- Stats helpers ------------------------------------------------------------------

TEST(Stats, MeanStdDevPercentile) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_NEAR(StdDev({2, 4, 4, 4, 5, 5, 7, 9}), 2.138, 0.001);
  EXPECT_DOUBLE_EQ(Percentile({1, 2, 3, 4, 5}, 50), 3.0);
  EXPECT_DOUBLE_EQ(Percentile({1, 2, 3, 4, 5}, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile({1, 2, 3, 4, 5}, 100), 5.0);
  EXPECT_DOUBLE_EQ(Percentile({1, 3}, 50), 2.0);  // Interpolated.
}

}  // namespace
}  // namespace ocasta
