#include <gtest/gtest.h>

#include "common/error.h"
#include "configstore/file_config_store.h"
#include "configstore/gconf_store.h"
#include "configstore/intercepting_store.h"
#include "configstore/registry_store.h"

namespace ocasta {
namespace {

// ----- Registry ------------------------------------------------------------------

TEST(RegistryStore, BasicReadWriteRemove) {
  RegistryStore store;
  const std::string key = "HKEY_CURRENT_USER\\Software\\App\\Setting";
  EXPECT_EQ(store.Read(key), std::nullopt);
  store.Write(key, Value(5));
  EXPECT_EQ(store.Read(key), Value(5));
  EXPECT_TRUE(store.Remove(key));
  EXPECT_FALSE(store.Remove(key));
  EXPECT_EQ(store.Read(key), std::nullopt);
}

TEST(RegistryStore, RejectsInvalidKeys) {
  RegistryStore store;
  EXPECT_THROW(store.Write("NoHive\\x", Value(1)), StoreError);
  EXPECT_THROW(store.Write("HKEY_CURRENT_USER\\\\double", Value(1)), StoreError);
  EXPECT_THROW(store.Read("relative"), StoreError);
}

TEST(RegistryStore, RegistryFlavoredApi) {
  RegistryStore store;
  store.SetValue("HKEY_CURRENT_USER\\Software\\App", "Width", Value(42));
  EXPECT_EQ(store.QueryValue("HKEY_CURRENT_USER\\Software\\App", "Width"), Value(42));
  EXPECT_TRUE(store.DeleteValue("HKEY_CURRENT_USER\\Software\\App", "Width"));
}

TEST(RegistryStore, ListKeysByPrefix) {
  RegistryStore store;
  store.Write("HKEY_CURRENT_USER\\A\\x", Value(1));
  store.Write("HKEY_CURRENT_USER\\A\\y", Value(2));
  store.Write("HKEY_CURRENT_USER\\B\\z", Value(3));
  EXPECT_EQ(store.ListKeys("HKEY_CURRENT_USER\\A\\").size(), 2u);
  EXPECT_EQ(store.ListKeys("").size(), 3u);
}

// ----- GConf ---------------------------------------------------------------------

TEST(GconfStore, PathValidation) {
  GconfStore store;
  store.Write("/apps/evolution/mark_seen", Value(true));
  EXPECT_THROW(store.Write("apps/x", Value(1)), StoreError);
  EXPECT_THROW(store.Write("/apps//x", Value(1)), StoreError);
  EXPECT_THROW(store.Write("/apps/x/", Value(1)), StoreError);
  EXPECT_THROW(store.Write("/", Value(1)), StoreError);
}

TEST(GconfStore, TypedGettersWithFallbacks) {
  GconfStore store;
  store.SetBool("/a/flag", true);
  store.SetInt("/a/num", 9);
  store.SetString("/a/str", "hi");
  EXPECT_TRUE(store.GetBool("/a/flag", false));
  EXPECT_EQ(store.GetInt("/a/num", -1), 9);
  EXPECT_EQ(store.GetString("/a/str", ""), "hi");
  // Fallbacks on absence and on type mismatch.
  EXPECT_FALSE(store.GetBool("/a/missing", false));
  EXPECT_EQ(store.GetInt("/a/flag", -1), -1);
}

TEST(MemoryStore, SnapshotRestoreRoundTrip) {
  GconfStore store;
  store.Write("/a/x", Value(1));
  store.Write("/a/y", Value("s"));
  const ConfigMap snapshot = store.Snapshot();
  store.Write("/a/x", Value(99));
  store.Remove("/a/y");
  store.RestoreSnapshot(snapshot);
  EXPECT_EQ(store.Read("/a/x"), Value(1));
  EXPECT_EQ(store.Read("/a/y"), Value("s"));
}

// ----- File store ------------------------------------------------------------------

TEST(FileConfigStore, AutoFlushSerializesEveryChange) {
  FileConfigStore store(ConfigFormat::kIni);
  int flushes = 0;
  store.set_flush_observer([&](const std::string&, const std::string&) { ++flushes; });
  store.Write("view/zoom", Value(2));
  EXPECT_EQ(flushes, 1);
  store.Write("view/zoom", Value(2));  // Unchanged: suppressed.
  EXPECT_EQ(flushes, 1);
  store.Write("view/zoom", Value(3));
  EXPECT_EQ(flushes, 2);
  EXPECT_NE(store.file_text().find("zoom = 3"), std::string::npos);
}

TEST(FileConfigStore, ManualFlushBatchesChanges) {
  FileConfigStore store(ConfigFormat::kJson, /*auto_flush=*/false);
  std::vector<std::pair<std::string, std::string>> flushes;
  store.set_flush_observer([&](const std::string& before, const std::string& after) {
    flushes.emplace_back(before, after);
  });
  store.Write("a", Value(1));
  store.Write("a", Value(2));  // Intermediate value invisible to observers.
  store.Write("b", Value(3));
  EXPECT_TRUE(flushes.empty());
  store.Flush();
  ASSERT_EQ(flushes.size(), 1u);
  store.Flush();  // Nothing dirty: no observer call.
  EXPECT_EQ(flushes.size(), 1u);
  const ConfigMap after = CodecFor(ConfigFormat::kJson).Parse(flushes[0].second);
  EXPECT_EQ(after.at("a"), Value(2));
  EXPECT_EQ(after.at("b"), Value(3));
}

TEST(FileConfigStore, LoadFileTextReplacesState) {
  FileConfigStore store(ConfigFormat::kPlainText);
  store.LoadFileText("x= 1\ny= hello\n");
  EXPECT_EQ(store.Read("x"), Value(1));
  EXPECT_EQ(store.Read("y"), Value("hello"));
  EXPECT_EQ(store.ListKeys("").size(), 2u);
}

// ----- Interception -----------------------------------------------------------------

class VectorSink final : public AccessSink {
 public:
  void OnAccess(const AccessEvent& event) override { events.push_back(event); }
  std::vector<AccessEvent> events;
};

TEST(InterceptingStore, LogsAllOperationsWithTimestamps) {
  RegistryStore backing;
  SimClock clock(Seconds(100));
  VectorSink sink;
  InterceptingStore store(backing, "TestApp", clock, &sink);

  store.Write("HKEY_CURRENT_USER\\A\\k", Value(1));
  clock.advance(Seconds(5));
  store.Read("HKEY_CURRENT_USER\\A\\k");
  store.Remove("HKEY_CURRENT_USER\\A\\k");
  store.Remove("HKEY_CURRENT_USER\\A\\k");  // Absent: no event.

  ASSERT_EQ(sink.events.size(), 3u);
  EXPECT_EQ(sink.events[0].op, AccessOp::kWrite);
  EXPECT_EQ(sink.events[0].value, Value(1));
  EXPECT_EQ(sink.events[0].timestamp, Seconds(100));
  EXPECT_EQ(sink.events[0].app, "TestApp");
  EXPECT_EQ(sink.events[0].store, StoreKind::kRegistry);
  EXPECT_EQ(sink.events[1].op, AccessOp::kRead);
  EXPECT_EQ(sink.events[1].timestamp, Seconds(105));
  EXPECT_EQ(sink.events[2].op, AccessOp::kDelete);
}

TEST(InterceptingStore, TransparentToTheApplication) {
  GconfStore backing;
  SimClock clock;
  VectorSink sink;
  InterceptingStore store(backing, "App", clock, &sink);
  store.Write("/a/b", Value("v"));
  EXPECT_EQ(store.Read("/a/b"), Value("v"));
  EXPECT_EQ(backing.Read("/a/b"), Value("v"));  // Forwarded to the real store.
  EXPECT_EQ(store.kind(), StoreKind::kGconf);
  EXPECT_EQ(store.Snapshot(), backing.Snapshot());
}

TEST(InterceptingStore, NullSinkDisablesMonitoring) {
  RegistryStore backing;
  SimClock clock;
  InterceptingStore store(backing, "App", clock, nullptr);
  store.Write("HKEY_CURRENT_USER\\A\\k", Value(1));  // Must not crash.
  EXPECT_EQ(store.Read("HKEY_CURRENT_USER\\A\\k"), Value(1));
}

}  // namespace
}  // namespace ocasta
