// bench_loadgen — multi-client load generator for the api::Engine backends.
//
// Spins up N client threads and drives a configurable PUT/GET mix over a
// keyspace chosen uniformly or Zipf-skewed (clients + warmup + measure
// phases, the DECS/DiStore load-generator shape). --backend picks the
// engine under test:
//   remote   boots a loopback TtkvServer in-process; every client owns one
//            RemoteEngine connection (protocol v3, BATCH frames when
//            --batch > 1)
//   sharded  all clients share one in-process ShardedTtkv (grouped shard
//            locking when --batch > 1)
//   local    all clients share one LocalEngine (one mutex)
//   durable  a write-ahead-logged DurableEngine over ShardedTtkv in a
//            fresh temp dir (or --data-dir); --fsync off|batch|always
//            picks the durability policy under test
// After a warmup phase, the measure phase records per-op latency; the run
// emits BENCH JSON with ops/sec, p50/p99 latency per op kind, and the
// engine's shard-lock acquisition count.
//
// --connections N switches to the connection-scaling driver: one epoll
// thread multiplexing N nonblocking connections against an in-process
// daemon, each keeping --inflight single-command frames pipelined
// (inflight 1 = closed loop per connection, >1 = open loop). This is the
// measurement behind the event-loop server's headline: frames per
// syscall, not threads per client.
//
// --suite runs the committed BENCH_server.json matrix instead: remote and
// sharded backends at batch depth 1 and --batch (default 16) — the
// measurement behind the BatchCmd fast path — plus the connection-scaling
// rows (1..256 connections), the remote_batch1_vs_pr4 before/after of the
// epoll rewrite, and the durable backend at the batched depth under each
// fsync policy, quantifying what acked-means-durable costs against the
// in-memory sharded engine (group commit is what keeps fsync=batch close).
//
// --check is the CI regression gate: a short fresh remote batch=1 run
// compared against the committed --baseline JSON, failing on a >30% drop.
//
// --metrics attaches an obs::MetricsRegistry to the engine/daemon under
// test and records the server-side apply-latency percentiles (fetched via
// the METRICS op) in a "server" sub-object next to the client-side
// numbers. The suite always enables it for the backend rows, and its
// metrics_overhead section reports the enabled-vs-disabled throughput
// delta of the same pipelined remote workload (the acceptance bar for the
// observability work is <= 5%).
//
//   bench_loadgen --backend remote --clients 8 --keys 2000 --put-ratio 0.5
//                 --dist zipf --theta 0.99 --shards 8 --warmup-ms 300
//                 --measure-ms 1500 --batch 1 --value-bytes 64
//                 --fsync batch --json BENCH_server.json [--quiet] [--suite]
//                 [--connections N --inflight K --io-threads T] [--metrics]
//                 [--check --baseline BENCH_server.json]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/socket.h>

#include <cstdlib>
#include <filesystem>

#include "api/backends.h"
#include "api/codec.h"
#include "common/io.h"
#include "parsers/json.h"
#include "server/wire.h"
#include "api/engine.h"
#include "persist/durable_engine.h"
#include "api/local_engine.h"
#include "api/remote_engine.h"
#include "bench_util.h"
#include "common/error.h"
#include "common/flags.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "server/server.h"
#include "server/sharded_ttkv.h"
#include "workload/keydist.h"

namespace ocasta {
namespace {

struct LoadGenConfig {
  std::string backend = "remote";
  size_t clients = 8;
  size_t keys = 2000;
  double put_ratio = 0.5;
  KeyDist dist = KeyDist::kZipf;
  double theta = 0.99;
  size_t shards = 8;
  int warmup_ms = 300;
  int measure_ms = 1500;
  size_t batch = 1;        // Commands per BatchCmd (1 = single Apply per op).
  size_t value_bytes = 64;
  uint64_t seed = 42;
  bool suite = false;
  std::string json_path = "BENCH_server.json";
  // durable + replicated backends only.
  std::string fsync = "batch";
  std::string data_dir;  // Empty = a fresh temp dir, removed after the run.
  // replicated backend only: leader-side ack level, "leader" (ack after the
  // local WAL flush) or "quorum" (ack only after the attached follower has
  // durably applied the mutation's LSN). See docs/REPLICATION.md.
  std::string acks = "leader";
  // Connection-scaling driver (remote only): 0 = the classic per-thread
  // closed-loop clients; N = one epoll thread multiplexing N nonblocking
  // connections, each keeping `inflight` single-command frames pipelined
  // (inflight 1 = closed loop per connection; >1 = open loop).
  size_t connections = 0;
  size_t inflight = 4;
  size_t io_threads = 1;  // Daemon event-loop workers for remote runs.
  // --check: fast CI regression gate comparing a fresh remote batch=1 run
  // against the committed baseline JSON.
  bool check = false;
  std::string baseline_path = "BENCH_server.json";
  // --metrics: run the engine/daemon with an obs::MetricsRegistry attached
  // and record server-side apply-latency percentiles (fetched via the
  // METRICS op) next to the client-side numbers. The suite always enables
  // it for the backend rows and separately quantifies its cost in the
  // metrics_overhead section.
  bool metrics = false;
};

// PR-4's thread-per-connection daemon measured on the benchmark host right
// before the event-loop rewrite landed (16 closed-loop clients, batch 1,
// zipf 0.99 — the exact runs[0] configuration). Committed so the suite
// JSON carries its own before/after evidence.
constexpr double kPr4RemoteBatch1Baseline = 123270.0;

enum class Phase { kWarmup, kMeasure, kDone };

struct ClientResult {
  std::vector<double> put_us;  // Per-op latency, measure phase only.
  std::vector<double> get_us;
};

void RunClient(const LoadGenConfig& cfg, api::Engine& engine, size_t id,
               const std::vector<std::string>& key_names, const KeyChooser& chooser,
               const std::atomic<Phase>& phase, ClientResult* result) {
  Rng rng(cfg.seed * 1000003 + id);
  const Value payload(std::string(cfg.value_bytes, 'x'));
  api::BatchCmd batch;

  const auto key_name = [&](size_t index) -> const std::string& { return key_names[index]; };

  while (phase.load(std::memory_order_acquire) != Phase::kDone) {
    const bool measuring = phase.load(std::memory_order_acquire) == Phase::kMeasure;
    const bool is_put = rng.next_bool(cfg.put_ratio);
    const auto start = std::chrono::steady_clock::now();
    if (cfg.batch == 1) {
      if (is_put) {
        engine.Apply(api::PutCmd{key_name(chooser.Next(rng)), payload, 0});
      } else {
        engine.Apply(api::GetCmd{key_name(chooser.Next(rng))});
      }
    } else {
      batch.commands.clear();
      for (size_t i = 0; i < cfg.batch; ++i) {
        if (is_put) {
          batch.commands.push_back(api::PutCmd{key_name(chooser.Next(rng)), payload, 0});
        } else {
          batch.commands.push_back(api::GetCmd{key_name(chooser.Next(rng))});
        }
      }
      engine.ApplyBatch(std::span(batch.commands));
    }
    if (measuring) {
      const double us = std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - start)
                            .count() /
                        static_cast<double>(cfg.batch);
      (is_put ? result->put_us : result->get_us).push_back(us);
    }
  }
}

double Percentile(std::vector<double>& sorted_in_place, double p) {
  if (sorted_in_place.empty()) return 0.0;
  std::sort(sorted_in_place.begin(), sorted_in_place.end());
  const size_t index = std::min(
      sorted_in_place.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted_in_place.size() - 1) / 100.0 + 0.5));
  return sorted_in_place[index];
}

struct RunMetrics {
  std::string backend;
  std::string fsync;          // Durable/replicated runs only; empty otherwise.
  std::string acks;           // Replicated runs only; empty otherwise.
  uint64_t wal_records = 0;   // Durable runs: records logged.
  uint64_t wal_flushes = 0;   // Durable runs: disk flushes performed.
  uint64_t io_frames = 0;     // Remote runs: frames dispatched by the event loops.
  uint64_t io_wakeups = 0;    // Remote runs: epoll wakeups (frames/wakeup = pipelining).
  size_t batch = 1;
  double measure_seconds = 0;
  uint64_t total_ops = 0;
  uint64_t put_ops = 0;
  uint64_t get_ops = 0;
  double ops_per_sec = 0;
  double put_p50 = 0, put_p99 = 0, get_p50 = 0, get_p99 = 0;
  EngineStats stats;
  // Server-side engine apply-latency percentiles (µs) out of the obs
  // histograms, fetched via the METRICS op when --metrics is on. The gap
  // between these and the client-side numbers is wire + event-loop time.
  bool metrics_enabled = false;
  double srv_put_p50 = 0, srv_put_p99 = 0, srv_get_p50 = 0, srv_get_p99 = 0;
};

// Apply-latency percentile (µs) for one op label out of the snapshot's
// ocasta_engine_apply_ns histograms; 0 when absent.
struct ServerPercentiles {
  double p50 = 0, p99 = 0;
};
ServerPercentiles ApplyPercentilesUs(const obs::MetricsSnapshot& snap, const char* op) {
  for (const auto& h : snap.histograms) {
    if (h.name != "ocasta_engine_apply_ns") continue;
    for (const auto& [k, v] : h.labels) {
      if (k == "op" && v == op) return {h.stats.p50 / 1000.0, h.stats.p99 / 1000.0};
    }
  }
  return {};
}

RunMetrics RunOne(const LoadGenConfig& cfg) {
  // Durable-backend scratch dir, removed on every exit path (including a
  // MakeEngine throw). Declared before the engine so the WAL closes before
  // the directory disappears.
  struct ScratchDir {
    std::string path;
    ~ScratchDir() {
      if (!path.empty()) std::filesystem::remove_all(path);
    }
  } scratch, follower_scratch;
  // One registry per run under --metrics: handed to the daemon for the
  // remote backend, wired into the engine directly otherwise. Declared
  // before the engines so the instrument handles never dangle.
  std::shared_ptr<obs::MetricsRegistry> registry;
  if (cfg.metrics) registry = std::make_shared<obs::MetricsRegistry>();
  // The engine under test plus, for the remote backend, the daemon that
  // owns it. Per-client engines (one connection each) are created below.
  std::unique_ptr<TtkvServer> server;
  // Replicated backend only: a second daemon tailing the first's WAL.
  // Declared after `server` so it is destroyed first (its pull loop stops
  // before the leader it pulls from goes away).
  std::unique_ptr<TtkvServer> follower;
  std::unique_ptr<api::Engine> shared_engine;
  std::vector<std::unique_ptr<api::Engine>> client_engines(cfg.clients);

  if (cfg.backend == "remote") {
    server = std::make_unique<TtkvServer>(ServerOptions{.port = 0,
                                                        .num_shards = cfg.shards,
                                                        .cluster_window_seconds = 1.0,
                                                        .io_threads = cfg.io_threads,
                                                        .metrics = registry});
    server->Start();
    for (auto& engine : client_engines) {
      engine = std::make_unique<api::RemoteEngine>("127.0.0.1", server->port());
    }
  } else if (cfg.backend == "sharded") {
    shared_engine = std::make_unique<ShardedTtkv>(cfg.shards, 1.0, registry.get());
  } else if (cfg.backend == "local") {
    shared_engine = std::make_unique<api::LocalEngine>(
        api::LocalEngine::Options{.cluster_window_seconds = 1.0, .metrics = registry.get()});
  } else if (cfg.backend == "durable") {
    // A fresh data dir per run unless pinned: recovering a previous run's
    // log would skew the measurement.
    std::string dir = cfg.data_dir;
    if (dir.empty()) {
      char tmpl[] = "/tmp/ocasta_loadgen_XXXXXX";
      if (::mkdtemp(tmpl) == nullptr) throw Error("mkdtemp failed for durable bench dir");
      dir = tmpl;
      scratch.path = dir;  // Removed after the run.
    }
    api::BackendOptions durable;
    durable.backend = "sharded";
    durable.num_shards = cfg.shards;
    durable.data_dir = dir;
    durable.fsync = cfg.fsync;
    durable.metrics = registry.get();
    shared_engine = api::MakeEngine(durable);
  } else if (cfg.backend == "replicated") {
    // The replication topology the --acks knob is about: a durable leader
    // daemon plus ONE live follower tailing its WAL over the wire.
    // acks=leader prices WAL shipping with local-flush acks; acks=quorum
    // additionally gates every mutation ack on the follower's durable
    // cursor — a pull round-trip plus the follower's own WAL flush
    // (docs/REPLICATION.md).
    if (cfg.acks != "leader" && cfg.acks != "quorum") {
      throw Error("--acks must be leader|quorum, got: " + cfg.acks);
    }
    char leader_tmpl[] = "/tmp/ocasta_loadgen_XXXXXX";
    if (::mkdtemp(leader_tmpl) == nullptr) throw Error("mkdtemp failed for leader bench dir");
    scratch.path = leader_tmpl;
    char follower_tmpl[] = "/tmp/ocasta_loadgen_XXXXXX";
    if (::mkdtemp(follower_tmpl) == nullptr) {
      throw Error("mkdtemp failed for follower bench dir");
    }
    follower_scratch.path = follower_tmpl;
    server = std::make_unique<TtkvServer>(ServerOptions{.port = 0,
                                                        .num_shards = cfg.shards,
                                                        .cluster_window_seconds = 1.0,
                                                        .data_dir = scratch.path,
                                                        .fsync = cfg.fsync,
                                                        .acks = cfg.acks,
                                                        .quorum_followers = 1,
                                                        .io_threads = cfg.io_threads,
                                                        .metrics = registry});
    server->Start();
    ServerOptions follower_options;
    follower_options.port = 0;
    follower_options.num_shards = cfg.shards;
    follower_options.cluster_window_seconds = 1.0;
    follower_options.data_dir = follower_scratch.path;
    follower_options.fsync = cfg.fsync;
    follower_options.follow_host = "127.0.0.1";
    follower_options.follow_port = server->port();
    follower = std::make_unique<TtkvServer>(follower_options);
    follower->Start();
    for (auto& engine : client_engines) {
      engine = std::make_unique<api::RemoteEngine>("127.0.0.1", server->port());
    }
  } else {
    throw Error("unknown backend: " + cfg.backend +
                " (expected local|sharded|remote|durable|replicated)");
  }

  if (!bench::QuietFlag()) {
    std::string detail;
    if (cfg.backend == "durable") detail = " fsync=" + cfg.fsync;
    if (cfg.backend == "replicated") detail = " fsync=" + cfg.fsync + " acks=" + cfg.acks;
    std::fprintf(stderr,
                 "[loadgen] backend %s%s — %zu clients, %zu keys (%s), put-ratio %.2f, "
                 "batch %zu\n",
                 cfg.backend.c_str(), detail.c_str(), cfg.clients, cfg.keys,
                 KeyDistName(cfg.dist), cfg.put_ratio, cfg.batch);
  }

  // Shared read-only key table: per-op key-name construction would
  // otherwise dominate the in-process backends' measurement.
  std::vector<std::string> key_names;
  key_names.reserve(cfg.keys);
  for (size_t i = 0; i < cfg.keys; ++i) key_names.push_back("bench/key" + std::to_string(i));

  const KeyChooser chooser(cfg.dist, cfg.keys, cfg.theta);
  std::atomic<Phase> phase{Phase::kWarmup};
  std::vector<ClientResult> results(cfg.clients);
  std::vector<std::thread> threads;
  threads.reserve(cfg.clients);
  for (size_t i = 0; i < cfg.clients; ++i) {
    api::Engine& engine = client_engines[i] ? *client_engines[i] : *shared_engine;
    threads.emplace_back(RunClient, std::cref(cfg), std::ref(engine), i, std::cref(key_names),
                         std::cref(chooser), std::cref(phase), &results[i]);
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(cfg.warmup_ms));
  const auto measure_start = std::chrono::steady_clock::now();
  phase.store(Phase::kMeasure, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(cfg.measure_ms));
  phase.store(Phase::kDone, std::memory_order_release);
  const double measure_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - measure_start).count();
  for (std::thread& t : threads) t.join();

  RunMetrics m;
  m.backend = cfg.backend;
  if (cfg.backend == "durable" || cfg.backend == "replicated") m.fsync = cfg.fsync;
  if (cfg.backend == "replicated") m.acks = cfg.acks;
  m.batch = cfg.batch;
  // Engine-side truth (lock counts, op totals) comes from the engine that
  // actually executed the commands — the daemon's for the remote backend.
  m.stats = server ? api::Stats(server->engine()) : api::Stats(*shared_engine);
  if (registry != nullptr) {
    // Server-side view of the same run, fetched through the METRICS op —
    // over the wire for the remote backend (the connections are still up),
    // in-process otherwise.
    const obs::MetricsSnapshot snap = !client_engines.empty() && client_engines[0]
                                          ? api::Metrics(*client_engines[0])
                                          : api::Metrics(*shared_engine);
    const ServerPercentiles put_ns = ApplyPercentilesUs(snap, "put");
    const ServerPercentiles get_ns = ApplyPercentilesUs(snap, "get");
    m.metrics_enabled = true;
    m.srv_put_p50 = put_ns.p50;
    m.srv_put_p99 = put_ns.p99;
    m.srv_get_p50 = get_ns.p50;
    m.srv_get_p99 = get_ns.p99;
  }
  // The WAL under test is the shared engine's for the durable backend and
  // the leader daemon's for the replicated one.
  api::Engine* wal_owner = server ? &server->engine() : shared_engine.get();
  if (auto* durable = dynamic_cast<persist::DurableEngine*>(wal_owner)) {
    m.wal_records = durable->wal().last_lsn();
    m.wal_flushes = durable->wal().sync_count();
  }
  if (follower) follower->Stop();
  if (server) {
    m.io_frames = server->frames_dispatched();
    m.io_wakeups = server->loop_wakeups();
    server->Stop();
  }
  shared_engine.reset();  // Close the WAL; `scratch` then removes its dir.

  std::vector<double> put_us;
  std::vector<double> get_us;
  for (ClientResult& result : results) {
    put_us.insert(put_us.end(), result.put_us.begin(), result.put_us.end());
    get_us.insert(get_us.end(), result.get_us.begin(), result.get_us.end());
  }
  m.put_ops = static_cast<uint64_t>(put_us.size()) * cfg.batch;
  m.get_ops = static_cast<uint64_t>(get_us.size()) * cfg.batch;
  m.total_ops = m.put_ops + m.get_ops;
  m.measure_seconds = measure_seconds;
  m.ops_per_sec = static_cast<double>(m.total_ops) / measure_seconds;
  m.put_p50 = Percentile(put_us, 50);
  m.put_p99 = Percentile(put_us, 99);
  m.get_p50 = Percentile(get_us, 50);
  m.get_p99 = Percentile(get_us, 99);

  if (!bench::QuietFlag()) {
    std::fprintf(stderr,
                 "[loadgen] %s batch=%zu: %.2fs, %llu ops (%.0f ops/sec) — put p50 %.1fus "
                 "p99 %.1fus, get p50 %.1fus p99 %.1fus; %llu lock acquisitions"
                 " (%llu shared / %llu exclusive)\n",
                 m.backend.c_str(), m.batch, m.measure_seconds,
                 static_cast<unsigned long long>(m.total_ops), m.ops_per_sec, m.put_p50,
                 m.put_p99, m.get_p50, m.get_p99,
                 static_cast<unsigned long long>(m.stats.lock_acquisitions),
                 static_cast<unsigned long long>(m.stats.read_lock_acquisitions),
                 static_cast<unsigned long long>(m.stats.write_lock_acquisitions));
    if (m.io_wakeups > 0) {
      std::fprintf(stderr, "[loadgen] event loop: %llu frames over %llu wakeups (%.1f/wakeup)\n",
                   static_cast<unsigned long long>(m.io_frames),
                   static_cast<unsigned long long>(m.io_wakeups),
                   static_cast<double>(m.io_frames) / static_cast<double>(m.io_wakeups));
    }
  }
  return m;
}

void WriteRunJson(std::FILE* out, const RunMetrics& m, const char* indent) {
  std::fprintf(out, "%s{\"backend\": \"%s\", ", indent, m.backend.c_str());
  if (!m.fsync.empty()) {
    std::fprintf(out, "\"fsync\": \"%s\", \"wal_records\": %llu, \"wal_flushes\": %llu, ",
                 m.fsync.c_str(), static_cast<unsigned long long>(m.wal_records),
                 static_cast<unsigned long long>(m.wal_flushes));
  }
  if (!m.acks.empty()) std::fprintf(out, "\"acks\": \"%s\", ", m.acks.c_str());
  std::fprintf(out,
               "\"batch\": %zu,\n"
               "%s \"measure_seconds\": %.3f, \"total_ops\": %llu, \"ops_per_sec\": %.1f,\n"
               "%s \"put\": {\"ops\": %llu, \"p50_us\": %.1f, \"p99_us\": %.1f},\n"
               "%s \"get\": {\"ops\": %llu, \"p50_us\": %.1f, \"p99_us\": %.1f},\n"
               "%s \"engine\": {\"num_keys\": %zu, \"writes\": %llu, \"reads\": %llu, "
               "\"lock_acquisitions\": %llu, \"read_locks\": %llu, \"write_locks\": %llu}",
               m.batch, indent, m.measure_seconds,
               static_cast<unsigned long long>(m.total_ops), m.ops_per_sec, indent,
               static_cast<unsigned long long>(m.put_ops), m.put_p50, m.put_p99, indent,
               static_cast<unsigned long long>(m.get_ops), m.get_p50, m.get_p99, indent,
               m.stats.ttkv.num_keys, static_cast<unsigned long long>(m.stats.ttkv.writes),
               static_cast<unsigned long long>(m.stats.ttkv.reads),
               static_cast<unsigned long long>(m.stats.lock_acquisitions),
               static_cast<unsigned long long>(m.stats.read_lock_acquisitions),
               static_cast<unsigned long long>(m.stats.write_lock_acquisitions));
  if (m.metrics_enabled) {
    // Server-side apply-latency percentiles out of the obs histograms,
    // fetched via the METRICS op; client numbers above include wire +
    // event-loop time, these do not.
    std::fprintf(out,
                 ",\n%s \"server\": {\"put_p50_us\": %.1f, \"put_p99_us\": %.1f, "
                 "\"get_p50_us\": %.1f, \"get_p99_us\": %.1f}",
                 indent, m.srv_put_p50, m.srv_put_p99, m.srv_get_p50, m.srv_get_p99);
  }
  std::fprintf(out, "}");
}

void WriteConfigJson(std::FILE* out, const LoadGenConfig& cfg) {
  std::fprintf(out,
               "  \"config\": {\"clients\": %zu, \"keys\": %zu, \"put_ratio\": %.2f,\n"
               "             \"dist\": \"%s\", \"theta\": %.2f, \"shards\": %zu,\n"
               "             \"warmup_ms\": %d, \"measure_ms\": %d,\n"
               "             \"value_bytes\": %zu},\n",
               cfg.clients, cfg.keys, cfg.put_ratio, KeyDistName(cfg.dist), cfg.theta,
               cfg.shards, cfg.warmup_ms, cfg.measure_ms, cfg.value_bytes);
}

double LocksPerOp(const RunMetrics& m) {
  const uint64_t ops = m.stats.puts + m.stats.gets + m.stats.deletes;
  return ops == 0 ? 0.0 : static_cast<double>(m.stats.lock_acquisitions) /
                              static_cast<double>(ops);
}

// --- Connection-scaling driver ----------------------------------------------
// One epoll thread multiplexing N nonblocking connections against an
// in-process daemon. Every request frame carries ONE command (batch=1 on
// the wire); `inflight` frames ride each connection unacknowledged, so the
// daemon's event loop sees real pipelining — many frames per read() — which
// a thread-per-connection server could never exploit. Requests are drawn
// from a pre-encoded pool so the single driver thread spends its cycles on
// I/O, not on re-encoding the same PUT/GET mix.

struct ConnRunMetrics {
  size_t connections = 0;
  size_t inflight = 0;
  double measure_seconds = 0;
  uint64_t total_ops = 0;
  double ops_per_sec = 0;
  uint64_t errors = 0;          // Error replies + unexpected disconnects.
  uint64_t io_frames = 0;       // Daemon-side: frames dispatched.
  uint64_t io_wakeups = 0;      // Daemon-side: epoll wakeups.
};

ConnRunMetrics RunConnectionsOne(const LoadGenConfig& cfg, size_t connections,
                                 size_t inflight) {
  ConnRunMetrics m;
  m.connections = connections;
  m.inflight = inflight;

  TtkvServer server(ServerOptions{.port = 0,
                                  .num_shards = cfg.shards,
                                  .cluster_window_seconds = 1.0,
                                  .io_threads = cfg.io_threads,
                                  .max_conns = connections + 64,
                                  .metrics = cfg.metrics
                                                 ? std::make_shared<obs::MetricsRegistry>()
                                                 : nullptr});
  server.Start();

  // Pre-encoded single-command request frames (length prefix included).
  Rng rng(cfg.seed);
  const KeyChooser chooser(cfg.dist, cfg.keys, cfg.theta);
  const Value payload(std::string(cfg.value_bytes, 'x'));
  std::vector<std::string> pool;
  pool.reserve(4096);
  for (size_t i = 0; i < 4096; ++i) {
    const std::string key = "bench/key" + std::to_string(chooser.Next(rng));
    const std::string body = rng.next_bool(cfg.put_ratio)
                                 ? api::EncodeCommand(api::PutCmd{key, payload, 0})
                                 : api::EncodeCommand(api::GetCmd{key});
    std::string frame;
    frame.reserve(kFrameHeaderBytes + body.size());
    AppendFrameHeader(frame, static_cast<uint32_t>(body.size()));
    frame.append(body);
    pool.push_back(std::move(frame));
  }

  struct DriverConn {
    int fd = -1;
    std::string in;      // Unparsed reply bytes.
    size_t pos = 0;
    std::string out;     // Request bytes not yet accepted by the socket.
    size_t out_sent = 0;
    bool want_write = false;
    bool dead = false;
  };
  std::vector<DriverConn> conns(connections);

  const int epfd = ::epoll_create1(0);
  if (epfd < 0) throw Error("epoll_create1 failed in connection driver");

  // Connect + HELLO each connection synchronously (blocking), then go
  // nonblocking and register.
  for (size_t i = 0; i < connections; ++i) {
    DriverConn& conn = conns[i];
    conn.fd = ConnectTcp("127.0.0.1", server.port());
    SendFrame(conn.fd, api::EncodeHello(api::kProtocolVersion));
    const auto hello = RecvFrame(conn.fd);
    if (!hello.has_value()) throw Error("daemon closed connection during driver HELLO");
    api::DecodeHelloReply(*hello);
    const int flags = ::fcntl(conn.fd, F_GETFL, 0);
    ::fcntl(conn.fd, F_SETFL, flags | O_NONBLOCK);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u32 = static_cast<uint32_t>(i);
    ::epoll_ctl(epfd, EPOLL_CTL_ADD, conn.fd, &ev);
  }

  size_t pool_next = 0;
  const auto next_frame = [&]() -> const std::string& {
    const std::string& frame = pool[pool_next];
    pool_next = (pool_next + 1) % pool.size();
    return frame;
  };
  const auto update_interest = [&](size_t index) {
    DriverConn& conn = conns[index];
    epoll_event ev{};
    ev.events = EPOLLIN | (conn.want_write ? EPOLLOUT : 0u);
    ev.data.u32 = static_cast<uint32_t>(index);
    ::epoll_ctl(epfd, EPOLL_CTL_MOD, conn.fd, &ev);
  };
  uint64_t errors = 0;
  // Marks a connection dead AND removes it from the driver: leaving a
  // closed peer registered would make its EOF readiness level-trigger
  // every epoll_wait and busy-spin the driver for the rest of the run.
  // Every kill is an error (the daemon dropped us or the socket died).
  const auto kill_conn = [&](size_t index) {
    DriverConn& conn = conns[index];
    if (conn.dead) return;
    conn.dead = true;
    ++errors;
    ::epoll_ctl(epfd, EPOLL_CTL_DEL, conn.fd, nullptr);
    ::close(conn.fd);
    conn.fd = -1;
  };
  // Flush a connection's pending request bytes; arms EPOLLOUT on a partial
  // write so a kernel send-buffer stall never blocks the driver.
  const auto flush = [&](size_t index) {
    DriverConn& conn = conns[index];
    while (conn.out_sent < conn.out.size()) {
      const ssize_t n = ::send(conn.fd, conn.out.data() + conn.out_sent,
                               conn.out.size() - conn.out_sent, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          if (!conn.want_write) {
            conn.want_write = true;
            update_interest(index);
          }
          return;
        }
        kill_conn(index);
        return;
      }
      conn.out_sent += static_cast<size_t>(n);
    }
    conn.out.clear();
    conn.out_sent = 0;
    if (conn.want_write) {
      conn.want_write = false;
      update_interest(index);
    }
  };

  // Prime the pipeline.
  for (size_t i = 0; i < connections; ++i) {
    for (size_t k = 0; k < inflight; ++k) conns[i].out += next_frame();
    flush(i);  // A hard send error kills (and counts) the connection.
  }

  const auto start = std::chrono::steady_clock::now();
  const auto measure_start = start + std::chrono::milliseconds(cfg.warmup_ms);
  const auto deadline = measure_start + std::chrono::milliseconds(cfg.measure_ms);
  uint64_t measured = 0;
  char scratch[256 << 10];
  std::vector<epoll_event> events(512);

  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) break;
    const int n = ::epoll_wait(epfd, events.data(), static_cast<int>(events.size()), 100);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    const bool measuring = std::chrono::steady_clock::now() >= measure_start;
    for (int e = 0; e < n; ++e) {
      const size_t index = events[e].data.u32;
      DriverConn& conn = conns[index];
      if (conn.fd < 0) continue;  // Killed earlier (fd deregistered + closed).
      if ((events[e].events & EPOLLOUT) != 0) {
        flush(index);
        if (conn.fd < 0) continue;
      }
      if ((events[e].events & EPOLLIN) == 0) continue;
      ssize_t got;
      do {
        got = ::recv(conn.fd, scratch, sizeof(scratch), 0);
      } while (got < 0 && errno == EINTR);
      if (got < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) continue;
        kill_conn(index);
        continue;
      }
      if (got == 0) {  // Daemon closed on us mid-run: that's an error.
        kill_conn(index);
        continue;
      }
      conn.in.append(scratch, static_cast<size_t>(got));
      // Parse replies; each completed reply refills the pipeline by one.
      size_t completed = 0;
      while (conn.in.size() - conn.pos >= kFrameHeaderBytes) {
        const uint32_t len = ReadFrameHeader(conn.in.data() + conn.pos);
        if (conn.in.size() - conn.pos - kFrameHeaderBytes < len) break;
        const char tag = conn.in[conn.pos + kFrameHeaderBytes];
        if (len == 0 || tag == static_cast<char>(api::ResultTag::kError)) ++errors;
        conn.pos += kFrameHeaderBytes + static_cast<size_t>(len);
        ++completed;
      }
      if (conn.pos == conn.in.size()) {
        conn.in.clear();
        conn.pos = 0;
      } else if (conn.pos >= (64u << 10)) {
        // Continuously pipelined replies rarely land on a frame boundary;
        // without this the consumed prefix grows with total bytes received.
        conn.in.erase(0, conn.pos);
        conn.pos = 0;
      }
      if (measuring) measured += completed;
      for (size_t k = 0; k < completed; ++k) conn.out += next_frame();
      if (completed > 0) flush(index);
    }
  }
  const double measure_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - measure_start).count();

  for (DriverConn& conn : conns) {
    if (conn.fd >= 0) ::close(conn.fd);
  }
  ::close(epfd);
  m.io_frames = server.frames_dispatched();
  m.io_wakeups = server.loop_wakeups();
  server.Stop();

  m.total_ops = measured;
  m.measure_seconds = measure_seconds;
  m.ops_per_sec = measure_seconds > 0 ? static_cast<double>(measured) / measure_seconds : 0.0;
  m.errors = errors;
  if (!bench::QuietFlag()) {
    std::fprintf(stderr,
                 "[loadgen] connections=%zu inflight=%zu: %.2fs, %llu ops (%.0f ops/sec), "
                 "%llu errors; daemon %.1f frames/wakeup\n",
                 m.connections, m.inflight, m.measure_seconds,
                 static_cast<unsigned long long>(m.total_ops), m.ops_per_sec,
                 static_cast<unsigned long long>(m.errors),
                 m.io_wakeups > 0
                     ? static_cast<double>(m.io_frames) / static_cast<double>(m.io_wakeups)
                     : 0.0);
  }
  return m;
}

void WriteConnRunJson(std::FILE* out, const ConnRunMetrics& m, const char* indent) {
  std::fprintf(out,
               "%s{\"connections\": %zu, \"inflight\": %zu, \"measure_seconds\": %.3f, "
               "\"total_ops\": %llu, \"ops_per_sec\": %.1f, \"errors\": %llu, "
               "\"frames_per_wakeup\": %.1f}",
               indent, m.connections, m.inflight, m.measure_seconds,
               static_cast<unsigned long long>(m.total_ops), m.ops_per_sec,
               static_cast<unsigned long long>(m.errors),
               m.io_wakeups > 0
                   ? static_cast<double>(m.io_frames) / static_cast<double>(m.io_wakeups)
                   : 0.0);
}

int RunSingle(const LoadGenConfig& cfg) {
  if (cfg.connections > 0) {
    const ConnRunMetrics m = RunConnectionsOne(cfg, cfg.connections, cfg.inflight);
    std::FILE* out = std::fopen(cfg.json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", cfg.json_path.c_str());
      return 1;
    }
    std::fprintf(out, "{\n  \"benchmark\": \"server_loadgen_connections\",\n");
    WriteConfigJson(out, cfg);
    std::fprintf(out, "  \"run\":\n");
    WriteConnRunJson(out, m, "    ");
    std::fprintf(out, "\n}\n");
    std::fclose(out);
    if (!bench::QuietFlag()) std::fprintf(stderr, "[loadgen] wrote %s\n", cfg.json_path.c_str());
    return m.total_ops > 0 && m.errors == 0 ? 0 : 1;
  }
  const RunMetrics m = RunOne(cfg);
  std::FILE* out = std::fopen(cfg.json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", cfg.json_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"benchmark\": \"server_loadgen\",\n");
  WriteConfigJson(out, cfg);
  std::fprintf(out, "  \"run\":\n");
  WriteRunJson(out, m, "    ");
  std::fprintf(out, "\n}\n");
  std::fclose(out);
  if (!bench::QuietFlag()) std::fprintf(stderr, "[loadgen] wrote %s\n", cfg.json_path.c_str());
  // Gate on the run having actually measured traffic, not on throughput:
  // a loaded CI machine must not flake the bench.
  return m.total_ops > 0 ? 0 : 1;
}

// --check: the CI regression gate. Reruns the committed baseline's remote
// batch=1 configuration (short measure window) and fails when fresh
// throughput drops more than 30% below the committed runs[0] number. The
// committed JSON was measured on the benchmark host, so treat a cross-host
// delta as environment, not regression — CI compares CI-to-committed
// trends, and the 30% margin absorbs runner noise.
int RunCheck(const LoadGenConfig& cfg) {
  double committed = 0.0;
  size_t committed_batch = 0;
  std::string committed_backend;
  try {
    const ConfigMap baseline = JsonCodec().Parse(ReadFile(cfg.baseline_path));
    const auto ops = baseline.find("runs/0/ops_per_sec");
    const auto batch = baseline.find("runs/0/batch");
    const auto backend = baseline.find("runs/0/backend");
    if (ops == baseline.end() || batch == baseline.end() || backend == baseline.end()) {
      throw Error("runs/0 metrics missing");
    }
    committed = ops->second.as_number();
    committed_batch = static_cast<size_t>(batch->second.as_int());
    committed_backend = backend->second.as_string();
  } catch (const Error& e) {
    std::fprintf(stderr, "check: cannot read baseline %s: %s\n", cfg.baseline_path.c_str(),
                 e.what());
    return 1;
  }
  if (committed_backend != "remote" || committed_batch != 1 || committed <= 0) {
    std::fprintf(stderr, "check: baseline runs[0] is not a remote batch=1 row\n");
    return 1;
  }

  LoadGenConfig one = cfg;
  one.backend = "remote";
  one.batch = 1;
  one.suite = false;
  const RunMetrics m = RunOne(one);
  const double ratio = m.ops_per_sec / committed;
  const bool ok = ratio >= 0.7;
  std::fprintf(stderr,
               "[loadgen] check: fresh remote batch=1 %.0f ops/sec vs committed %.0f "
               "(%.2fx) — %s\n",
               m.ops_per_sec, committed, ratio, ok ? "OK" : "REGRESSION (>30% below baseline)");
  return ok ? 0 : 1;
}

int RunSuite(const LoadGenConfig& cfg) {
  const size_t batched = cfg.batch > 1 ? cfg.batch : 16;
  std::vector<RunMetrics> runs;
  for (const char* backend : {"remote", "sharded"}) {
    for (const size_t batch : {size_t{1}, batched}) {
      LoadGenConfig one = cfg;
      one.backend = backend;
      one.batch = batch;
      // Suite rows carry the server-side histogram percentiles next to the
      // client-side numbers; the cost of that instrumentation is measured
      // separately below (metrics_overhead).
      one.metrics = true;
      runs.push_back(RunOne(one));
    }
  }
  // The durability cost matrix: the WAL-decorated sharded engine at the
  // batched depth under each fsync policy, against run[3] (the same engine,
  // same depth, no log) as the in-memory baseline. Group commit — one fsync
  // acknowledging a whole batch of writers — is what keeps "batch" close.
  for (const char* fsync : {"off", "batch", "always"}) {
    LoadGenConfig one = cfg;
    one.backend = "durable";
    one.fsync = fsync;
    one.batch = batched;
    // Always a fresh temp dir, even when --data-dir was passed: the rows
    // would otherwise recover and replay each other's logs.
    one.data_dir.clear();
    one.metrics = true;
    runs.push_back(RunOne(one));
  }
  // Replication ack-level matrix: the durable leader plus one live
  // follower at the batched depth, acked at the local flush vs at the
  // follower's durable cursor. APPENDED after the durable rows — the
  // summary lambdas above reference runs[] by fixed index, so new rows
  // must never shift 0..6.
  for (const char* acks : {"leader", "quorum"}) {
    LoadGenConfig one = cfg;
    one.backend = "replicated";
    one.acks = acks;
    one.batch = batched;
    one.data_dir.clear();
    one.metrics = true;
    runs.push_back(RunOne(one));
  }
  // Connection-scaling matrix: the same daemon under 1..256 pipelined
  // connections driven by the epoll client (single-command frames). This is
  // the event-loop rewrite's headline: thread-per-connection throughput was
  // flat-to-falling past a few dozen threads, the event loop holds steady
  // at hundreds of connections and multiplies frames per syscall.
  std::vector<ConnRunMetrics> conn_runs;
  for (const size_t connections : {size_t{1}, size_t{4}, size_t{16}, size_t{64}, size_t{256}}) {
    conn_runs.push_back(RunConnectionsOne(cfg, connections, cfg.inflight));
  }
  double pipelined_peak = 0.0;
  for (const ConnRunMetrics& m : conn_runs) pipelined_peak = std::max(pipelined_peak, m.ops_per_sec);

  // Metrics-overhead gate: the identical pipelined remote workload with
  // instrumentation fully off vs fully on (registry, per-op histograms, WAL
  // and loop counters live). Run-to-run scheduler noise on small runners
  // (±15% observed) dwarfs the effect being measured, so interleave four
  // reps per side and compare best-of-each — the best run is the one least
  // disturbed by the scheduler, which is the run that isolates the
  // instrumentation cost. The acceptance bar for the observability work is
  // a delta within 5%.
  const size_t overhead_conns = 16;
  LoadGenConfig metrics_off = cfg;
  metrics_off.metrics = false;
  LoadGenConfig metrics_on = cfg;
  metrics_on.metrics = true;
  double ops_off = 0.0;
  double ops_on = 0.0;
  for (int rep = 0; rep < 4; ++rep) {
    ops_off = std::max(ops_off,
                       RunConnectionsOne(metrics_off, overhead_conns, cfg.inflight).ops_per_sec);
    ops_on = std::max(ops_on,
                      RunConnectionsOne(metrics_on, overhead_conns, cfg.inflight).ops_per_sec);
  }
  const double overhead_pct = ops_off > 0 ? (ops_off - ops_on) / ops_off * 100.0 : 0.0;

  const RunMetrics& remote_single = runs[0];
  const RunMetrics& remote_batched = runs[1];
  const RunMetrics& sharded_single = runs[2];
  const RunMetrics& sharded_batched = runs[3];
  const double sharded_speedup =
      sharded_single.ops_per_sec > 0 ? sharded_batched.ops_per_sec / sharded_single.ops_per_sec
                                     : 0.0;
  const double remote_speedup =
      remote_single.ops_per_sec > 0 ? remote_batched.ops_per_sec / remote_single.ops_per_sec
                                    : 0.0;
  // Durable throughput relative to the in-memory sharded engine (1.0 =
  // free durability; >= 0.5 = "within 2x").
  const auto durable_relative = [&](size_t index) {
    return sharded_batched.ops_per_sec > 0
               ? runs[index].ops_per_sec / sharded_batched.ops_per_sec
               : 0.0;
  };
  // What group commit specifically buys: the disk-flushing policies
  // relative to the same WAL stack with the log left in the page cache
  // (fsync=off). This isolates the flush cost from the logging cost.
  const RunMetrics& durable_off = runs[4];
  const auto flush_relative = [&](size_t index) {
    return durable_off.ops_per_sec > 0 ? runs[index].ops_per_sec / durable_off.ops_per_sec
                                       : 0.0;
  };
  // What replication costs, in two steps: shipping the WAL to a live
  // follower while still acking at the local flush (runs[7] vs runs[5],
  // the identical durable stack with no follower attached), and then
  // gating every ack on the follower's durable cursor (runs[8] vs
  // runs[7] — the quorum round-trip itself).
  const RunMetrics& repl_leader_acks = runs[7];
  const RunMetrics& repl_quorum_acks = runs[8];
  const RunMetrics& durable_batch = runs[5];
  const double leader_acks_vs_durable =
      durable_batch.ops_per_sec > 0 ? repl_leader_acks.ops_per_sec / durable_batch.ops_per_sec
                                    : 0.0;
  const double quorum_vs_leader_acks =
      repl_leader_acks.ops_per_sec > 0
          ? repl_quorum_acks.ops_per_sec / repl_leader_acks.ops_per_sec
          : 0.0;

  std::FILE* out = std::fopen(cfg.json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", cfg.json_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"benchmark\": \"server_loadgen_suite\",\n");
  WriteConfigJson(out, cfg);
  std::fprintf(out, "  \"runs\": [\n");
  for (size_t i = 0; i < runs.size(); ++i) {
    WriteRunJson(out, runs[i], "    ");
    std::fprintf(out, i + 1 < runs.size() ? ",\n" : "\n");
  }
  std::fprintf(out, "  ],\n  \"connection_scaling\": {\"inflight\": %zu, \"rows\": [\n",
               cfg.inflight);
  for (size_t i = 0; i < conn_runs.size(); ++i) {
    WriteConnRunJson(out, conn_runs[i], "    ");
    std::fprintf(out, i + 1 < conn_runs.size() ? ",\n" : "\n");
  }
  std::fprintf(out,
               "  ]},\n"
               "  \"batch_depth\": %zu,\n"
               "  \"remote_batch_speedup\": %.2f,\n"
               "  \"sharded_batch_speedup\": %.2f,\n"
               "  \"sharded_locks_per_op\": {\"batch_1\": %.3f, \"batch_%zu\": %.3f},\n"
               "  \"remote_batch1_vs_pr4\": {\"pr4_thread_per_conn_ops_per_sec\": %.1f,\n"
               "     \"closed_loop_ops_per_sec\": %.1f, \"closed_loop_speedup\": %.2f,\n"
               "     \"pipelined_peak_ops_per_sec\": %.1f, \"pipelined_speedup\": %.2f},\n"
               "  \"durable_vs_sharded_batched\": "
               "{\"off\": %.2f, \"batch\": %.2f, \"always\": %.2f},\n"
               "  \"durable_vs_fsync_off\": {\"batch\": %.2f, \"always\": %.2f},\n"
               "  \"replication_acks\": {\"leader_ops_per_sec\": %.1f, "
               "\"quorum_ops_per_sec\": %.1f,\n"
               "     \"leader_acks_vs_durable_batch\": %.2f, "
               "\"quorum_vs_leader_acks\": %.2f},\n"
               "  \"metrics_overhead\": {\"connections\": %zu, \"inflight\": %zu,\n"
               "     \"ops_per_sec_disabled\": %.1f, \"ops_per_sec_enabled\": %.1f,\n"
               "     \"delta_pct\": %.2f}\n"
               "}\n",
               batched, remote_speedup, sharded_speedup, LocksPerOp(sharded_single), batched,
               LocksPerOp(sharded_batched), kPr4RemoteBatch1Baseline,
               remote_single.ops_per_sec,
               remote_single.ops_per_sec / kPr4RemoteBatch1Baseline, pipelined_peak,
               pipelined_peak / kPr4RemoteBatch1Baseline, durable_relative(4),
               durable_relative(5), durable_relative(6), flush_relative(5),
               flush_relative(6), repl_leader_acks.ops_per_sec, repl_quorum_acks.ops_per_sec,
               leader_acks_vs_durable, quorum_vs_leader_acks, overhead_conns, cfg.inflight,
               ops_off, ops_on, overhead_pct);
  std::fclose(out);
  if (!bench::QuietFlag()) {
    std::fprintf(stderr,
                 "[loadgen] suite: remote batch speedup %.2fx, sharded batch speedup %.2fx "
                 "(locks/op %.3f -> %.3f); durable vs in-memory: off %.2fx, batch %.2fx, "
                 "always %.2fx; flush cost vs fsync=off: batch %.2fx, always %.2fx; "
                 "wrote %s\n",
                 remote_speedup, sharded_speedup, LocksPerOp(sharded_single),
                 LocksPerOp(sharded_batched), durable_relative(4), durable_relative(5),
                 durable_relative(6), flush_relative(5), flush_relative(6),
                 cfg.json_path.c_str());
    std::fprintf(stderr,
                 "[loadgen] replication acks: leader %.0f ops/sec (%.2fx of durable batch), "
                 "quorum %.0f (%.2fx of leader acks)\n",
                 repl_leader_acks.ops_per_sec, leader_acks_vs_durable,
                 repl_quorum_acks.ops_per_sec, quorum_vs_leader_acks);
    std::fprintf(stderr,
                 "[loadgen] metrics overhead (%zu conns, inflight %zu): %.0f ops/sec off vs "
                 "%.0f on — %.2f%%\n",
                 overhead_conns, cfg.inflight, ops_off, ops_on, overhead_pct);
  }
  for (const RunMetrics& m : runs) {
    if (m.total_ops == 0) return 1;
  }
  return 0;
}

}  // namespace
}  // namespace ocasta

int main(int argc, char** argv) {
  using namespace ocasta;
  const Args args = Args::Parse(argc, argv);
  if (args.Has("quiet")) bench::SetQuiet(true);
  LoadGenConfig cfg;
  cfg.backend = args.Get("backend", "remote");
  cfg.clients = static_cast<size_t>(args.GetInt("clients", 8));
  cfg.keys = static_cast<size_t>(args.GetInt("keys", 2000));
  cfg.put_ratio = args.GetDouble("put-ratio", 0.5);
  cfg.theta = args.GetDouble("theta", 0.99);
  cfg.shards = static_cast<size_t>(args.GetInt("shards", 8));
  cfg.warmup_ms = static_cast<int>(args.GetInt("warmup-ms", 300));
  cfg.measure_ms = static_cast<int>(args.GetInt("measure-ms", 1500));
  cfg.batch = static_cast<size_t>(args.GetInt("batch", 1));
  cfg.value_bytes = static_cast<size_t>(args.GetInt("value-bytes", 64));
  cfg.seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  cfg.suite = args.Has("suite");
  cfg.json_path = args.Get("json", "BENCH_server.json");
  cfg.fsync = args.Get("fsync", "batch");
  cfg.data_dir = args.Get("data-dir", "");
  cfg.acks = args.Get("acks", "leader");
  cfg.connections = static_cast<size_t>(args.GetInt("connections", 0));
  cfg.inflight = static_cast<size_t>(args.GetInt("inflight", 4));
  cfg.io_threads = static_cast<size_t>(args.GetInt("io-threads", 1));
  cfg.check = args.Has("check");
  cfg.baseline_path = args.Get("baseline", "BENCH_server.json");
  cfg.metrics = args.Has("metrics");
  try {
    cfg.dist = KeyDistByName(args.Get("dist", "zipf"));
    if (cfg.clients == 0 || cfg.batch == 0) throw Error("--clients and --batch must be >= 1");
    if (cfg.put_ratio < 0.0 || cfg.put_ratio > 1.0) throw Error("--put-ratio must be in [0,1]");
    if (cfg.inflight == 0) throw Error("--inflight must be >= 1");
    if (cfg.connections > 1024) throw Error("--connections caps at 1024");
    if (cfg.check) return RunCheck(cfg);
    return cfg.suite ? RunSuite(cfg) : RunSingle(cfg);
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
