// bench_loadgen — multi-client load generator for the ocastad daemon.
//
// Boots a loopback TtkvServer in-process, spins up N client threads (one
// TcpClient connection each, like the DECS/DiStore load-generator shape:
// clients + warmup + measure phases), and drives a configurable PUT/GET mix
// over a keyspace chosen uniformly or Zipf-skewed. After a warmup phase,
// the measure phase records per-op latency; the run emits BENCH_server.json
// with ops/sec and p50/p99 latency per op kind.
//
//   bench_loadgen --clients 8 --keys 2000 --put-ratio 0.5 --dist zipf
//                 --theta 0.99 --shards 8 --warmup-ms 300 --measure-ms 1500
//                 --batch 1 --value-bytes 64 --json BENCH_server.json [--quiet]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "client/ttkv_client.h"
#include "common/flags.h"
#include "common/rng.h"
#include "server/server.h"
#include "workload/keydist.h"

namespace ocasta {
namespace {

struct LoadGenConfig {
  size_t clients = 8;
  size_t keys = 2000;
  double put_ratio = 0.5;
  KeyDist dist = KeyDist::kZipf;
  double theta = 0.99;
  size_t shards = 8;
  int warmup_ms = 300;
  int measure_ms = 1500;
  size_t batch = 1;        // Pipelining depth (1 = strict request/reply).
  size_t value_bytes = 64;
  uint64_t seed = 42;
  std::string json_path = "BENCH_server.json";
};

enum class Phase { kWarmup, kMeasure, kDone };

struct ClientResult {
  std::vector<double> put_us;  // Per-op latency, measure phase only.
  std::vector<double> get_us;
};

void RunClient(const LoadGenConfig& cfg, uint16_t port, size_t id,
               const KeyChooser& chooser, const std::atomic<Phase>& phase,
               ClientResult* result) {
  TtkvClient client("127.0.0.1", port);
  client.Connect();
  Rng rng(cfg.seed * 1000003 + id);
  const std::string payload(cfg.value_bytes, 'x');
  std::vector<std::pair<std::string, Value>> put_batch;
  std::vector<std::string> get_batch;

  const auto key_name = [&](size_t index) { return "bench/key" + std::to_string(index); };

  while (phase.load(std::memory_order_acquire) != Phase::kDone) {
    const bool measuring = phase.load(std::memory_order_acquire) == Phase::kMeasure;
    const bool is_put = rng.next_bool(cfg.put_ratio);
    const auto start = std::chrono::steady_clock::now();
    if (is_put) {
      if (cfg.batch == 1) {
        client.Put(key_name(chooser.Next(rng)), Value(payload));
      } else {
        put_batch.clear();
        for (size_t i = 0; i < cfg.batch; ++i) {
          put_batch.emplace_back(key_name(chooser.Next(rng)), Value(payload));
        }
        client.PutBatch(put_batch);
      }
    } else {
      if (cfg.batch == 1) {
        client.Get(key_name(chooser.Next(rng)));
      } else {
        get_batch.clear();
        for (size_t i = 0; i < cfg.batch; ++i) get_batch.push_back(key_name(chooser.Next(rng)));
        client.GetBatch(get_batch);
      }
    }
    if (measuring) {
      const double us = std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - start)
                            .count() /
                        static_cast<double>(cfg.batch);
      (is_put ? result->put_us : result->get_us).push_back(us);
    }
  }
}

double Percentile(std::vector<double>& sorted_in_place, double p) {
  if (sorted_in_place.empty()) return 0.0;
  std::sort(sorted_in_place.begin(), sorted_in_place.end());
  const size_t index = std::min(
      sorted_in_place.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted_in_place.size() - 1) / 100.0 + 0.5));
  return sorted_in_place[index];
}

int RunLoadGen(const LoadGenConfig& cfg) {
  TtkvServer server(ServerOptions{.port = 0,
                                  .num_shards = cfg.shards,
                                  .cluster_window_seconds = 1.0});
  server.Start();
  if (!bench::QuietFlag()) {
    std::fprintf(stderr,
                 "[loadgen] ocastad on 127.0.0.1:%u — %zu clients, %zu keys (%s), "
                 "put-ratio %.2f, batch %zu\n",
                 static_cast<unsigned>(server.port()), cfg.clients, cfg.keys,
                 KeyDistName(cfg.dist), cfg.put_ratio, cfg.batch);
  }

  const KeyChooser chooser(cfg.dist, cfg.keys, cfg.theta);
  std::atomic<Phase> phase{Phase::kWarmup};
  std::vector<ClientResult> results(cfg.clients);
  std::vector<std::thread> threads;
  threads.reserve(cfg.clients);
  for (size_t i = 0; i < cfg.clients; ++i) {
    threads.emplace_back(RunClient, std::cref(cfg), server.port(), i, std::cref(chooser),
                         std::cref(phase), &results[i]);
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(cfg.warmup_ms));
  const auto measure_start = std::chrono::steady_clock::now();
  phase.store(Phase::kMeasure, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(cfg.measure_ms));
  phase.store(Phase::kDone, std::memory_order_release);
  const double measure_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - measure_start).count();
  for (std::thread& t : threads) t.join();

  const EngineStats stats = server.engine().Stats();
  server.Stop();

  std::vector<double> put_us;
  std::vector<double> get_us;
  for (ClientResult& result : results) {
    put_us.insert(put_us.end(), result.put_us.begin(), result.put_us.end());
    get_us.insert(get_us.end(), result.get_us.begin(), result.get_us.end());
  }
  const uint64_t put_ops = static_cast<uint64_t>(put_us.size()) * cfg.batch;
  const uint64_t get_ops = static_cast<uint64_t>(get_us.size()) * cfg.batch;
  const uint64_t total_ops = put_ops + get_ops;
  const double ops_per_sec = static_cast<double>(total_ops) / measure_seconds;

  const double put_p50 = Percentile(put_us, 50), put_p99 = Percentile(put_us, 99);
  const double get_p50 = Percentile(get_us, 50), get_p99 = Percentile(get_us, 99);

  if (!bench::QuietFlag()) {
    std::fprintf(stderr,
                 "[loadgen] measured %.2fs: %llu ops (%.0f ops/sec) — put p50 %.1fus p99 "
                 "%.1fus, get p50 %.1fus p99 %.1fus; daemon saw %llu puts / %llu gets\n",
                 measure_seconds, static_cast<unsigned long long>(total_ops), ops_per_sec,
                 put_p50, put_p99, get_p50, get_p99,
                 static_cast<unsigned long long>(stats.puts),
                 static_cast<unsigned long long>(stats.gets));
  }

  std::FILE* out = std::fopen(cfg.json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", cfg.json_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"benchmark\": \"server_loadgen\",\n"
               "  \"config\": {\"clients\": %zu, \"keys\": %zu, \"put_ratio\": %.2f,\n"
               "             \"dist\": \"%s\", \"theta\": %.2f, \"shards\": %zu,\n"
               "             \"warmup_ms\": %d, \"measure_ms\": %d, \"batch\": %zu,\n"
               "             \"value_bytes\": %zu},\n"
               "  \"measure_seconds\": %.3f,\n"
               "  \"total_ops\": %llu,\n"
               "  \"ops_per_sec\": %.1f,\n"
               "  \"put\": {\"ops\": %llu, \"p50_us\": %.1f, \"p99_us\": %.1f},\n"
               "  \"get\": {\"ops\": %llu, \"p50_us\": %.1f, \"p99_us\": %.1f},\n"
               "  \"server\": {\"num_keys\": %zu, \"writes\": %llu, \"reads\": %llu}\n"
               "}\n",
               cfg.clients, cfg.keys, cfg.put_ratio, KeyDistName(cfg.dist), cfg.theta,
               cfg.shards, cfg.warmup_ms, cfg.measure_ms, cfg.batch, cfg.value_bytes,
               measure_seconds, static_cast<unsigned long long>(total_ops), ops_per_sec,
               static_cast<unsigned long long>(put_ops), put_p50, put_p99,
               static_cast<unsigned long long>(get_ops), get_p50, get_p99,
               stats.ttkv.num_keys, static_cast<unsigned long long>(stats.ttkv.writes),
               static_cast<unsigned long long>(stats.ttkv.reads));
  std::fclose(out);
  if (!bench::QuietFlag()) std::fprintf(stderr, "[loadgen] wrote %s\n", cfg.json_path.c_str());
  // Gate on the run having actually measured traffic, not on throughput:
  // a loaded CI machine must not flake the bench.
  return total_ops > 0 ? 0 : 1;
}

}  // namespace
}  // namespace ocasta

int main(int argc, char** argv) {
  using namespace ocasta;
  const Args args = Args::Parse(argc, argv);
  if (args.Has("quiet")) bench::SetQuiet(true);
  LoadGenConfig cfg;
  cfg.clients = static_cast<size_t>(args.GetInt("clients", 8));
  cfg.keys = static_cast<size_t>(args.GetInt("keys", 2000));
  cfg.put_ratio = args.GetDouble("put-ratio", 0.5);
  cfg.theta = args.GetDouble("theta", 0.99);
  cfg.shards = static_cast<size_t>(args.GetInt("shards", 8));
  cfg.warmup_ms = static_cast<int>(args.GetInt("warmup-ms", 300));
  cfg.measure_ms = static_cast<int>(args.GetInt("measure-ms", 1500));
  cfg.batch = static_cast<size_t>(args.GetInt("batch", 1));
  cfg.value_bytes = static_cast<size_t>(args.GetInt("value-bytes", 64));
  cfg.seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  cfg.json_path = args.Get("json", "BENCH_server.json");
  try {
    cfg.dist = KeyDistByName(args.Get("dist", "zipf"));
    if (cfg.clients == 0 || cfg.batch == 0) throw Error("--clients and --batch must be >= 1");
    if (cfg.put_ratio < 0.0 || cfg.put_ratio > 1.0) throw Error("--put-ratio must be in [0,1]");
    return RunLoadGen(cfg);
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
