// Reproduces Table I: summary statistics of the nine deployment traces.
//
// Paper reference values (days / reads / writes / #keys / TTKV size):
//   Windows 7       42  6.76M  67.72K   4,611  85MB
//   Windows Vista   53  3.46M  20.5K   14,673  29MB
//   Windows Vista-2 18 15.08M 224.64K   1,123  6.3MB
//   Windows XP      25 22.80M 311.9K   14,667  24MB
//   Windows XP-2    32 26.76M 268.96K  19,501  46MB
//   Linux-1         25 91.52K  3.34K    1,660  6MB
//   Linux-2         84  8.15K  0.48K       35  0.1MB
//   Linux-3         46 52.41K  0.44K      706  0.7MB
//   Linux-4         64 507.07K 5.43K      751  6.4MB
// Absolute counts depend on the usage simulator; the shape to check is the
// per-machine ordering and the orders of magnitude.
#include <cstdio>

#include "bench_util.h"
#include "common/flags.h"
#include "ttkv/ttkv.h"

using namespace ocasta;
using namespace ocasta::bench;

int main(int argc, char** argv) {
  if (ocasta::Args::Parse(argc, argv).Has("quiet")) ocasta::bench::SetQuiet(true);
  TextTable table({"Name", "Days", "Reads", "Writes", "# Keys", "TTKV Size"});
  for (const MachineTrace& machine : AllMachines()) {
    const TTKV ttkv = BuildMachineTtkv(machine);
    const TtkvStats stats = ttkv.stats();
    table.add_row({machine.profile.name, std::to_string(machine.profile.days),
                   HumanCount(stats.reads), HumanCount(stats.writes - stats.deletes),
                   StrFormat("%zu", stats.num_keys),
                   HumanBytes(stats.size_bytes + ttkv.Serialize().size())});
  }
  std::printf("Table I: Summary of trace statistics (simulated deployments)\n\n%s",
              table.render().c_str());
  return 0;
}
