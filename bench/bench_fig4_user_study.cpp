// Reproduces Figure 4: time to fix with Ocasta vs manual fixing, from the
// user study on errors #11, #13, #15 and #16.
//
// The paper measured 19 participants: with Ocasta, the human time is trial
// creation plus screenshot selection (the machine search runs unattended);
// manually, participants troubleshot with a 5-minute cutoff, and only
// error #16 was fixed by most. Here 19 simulated participants run against
// each error's actual repair outcome (screenshot count from the Table IV
// pipeline).
#include <cstdio>

#include "analysis/stats.h"
#include "bench_util.h"
#include "common/flags.h"
#include "repair/user_model.h"
#include "scenarios/harness.h"

using namespace ocasta;
using namespace ocasta::bench;

int main(int argc, char** argv) {
  if (ocasta::Args::Parse(argc, argv).Has("quiet")) ocasta::bench::SetQuiet(true);
  const std::vector<ParticipantProfile> participants = StudyParticipants(/*seed=*/2014);
  Rng rng(41);

  TextTable table({"Case", "Ocasta avg", "Manual avg", "Manual fixed", "Screens inspected"});
  for (const UserStudyErrorParams& error : UserStudyErrors()) {
    const ErrorScenario scenario = ScenarioById(error.error_id);
    const ScenarioRun run =
        RunScenario(MachineByName(scenario.machine), scenario, ScenarioRunOptions{});

    std::vector<double> ocasta_s;
    std::vector<double> manual_s;
    int manual_fixed = 0;
    for (const ParticipantProfile& participant : participants) {
      const ParticipantOutcome outcome =
          SimulateParticipant(rng, participant, error, run.ocasta.unique_screenshots);
      ocasta_s.push_back(static_cast<double>(outcome.ocasta_total) / kMicrosPerSecond);
      manual_s.push_back(static_cast<double>(outcome.manual_time) / kMicrosPerSecond);
      if (outcome.manual_fixed) ++manual_fixed;
    }
    table.add_row({std::to_string(error.error_id), StrFormat("%.0fs", Mean(ocasta_s)),
                   StrFormat("%.0fs%s", Mean(manual_s), manual_fixed < 19 ? " (lower bound)" : ""),
                   StrFormat("%d/19", manual_fixed),
                   std::to_string(run.ocasta.unique_screenshots)});
  }
  std::printf("Figure 4: user time to fix with Ocasta vs manual (19 simulated participants)\n"
              "(paper: Ocasta saves significant effort on every error; only case 16 was\n"
              " commonly fixed manually, lowering its manual average)\n\n%s",
              table.render().c_str());
  return 0;
}
