// Reproduces Table III: the 16 real-world configuration errors, with the
// trace, application and logger type each one runs against.
#include <cstdio>

#include "common/table.h"
#include "scenarios/scenarios.h"

using namespace ocasta;

int main() {
  TextTable table({"Case", "Trace", "Application", "Logger", "Description"});
  for (const ErrorScenario& scenario : AllScenarios()) {
    table.add_row({std::to_string(scenario.id), scenario.machine, scenario.app, scenario.logger,
                   scenario.description});
  }
  std::printf("Table III: Real configuration errors used in the evaluation\n\n%s",
              table.render().c_str());
  return 0;
}
