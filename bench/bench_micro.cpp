// Microbenchmarks (google-benchmark): throughput of the substrate pieces —
// TTKV recording and time-travel queries, the five config-file codecs, the
// co-modification window pass, correlation computation, and HAC.
#include <benchmark/benchmark.h>

#include "clustering/correlation.h"
#include "clustering/engine.h"
#include "clustering/hac.h"
#include "clustering/window.h"
#include "common/rng.h"
#include "parsers/codec.h"
#include "ttkv/ttkv.h"

namespace ocasta {
namespace {

// ----- TTKV -----------------------------------------------------------------

void BM_TtkvRecordWrite(benchmark::State& state) {
  const size_t num_keys = static_cast<size_t>(state.range(0));
  std::vector<std::string> keys;
  for (size_t i = 0; i < num_keys; ++i) keys.push_back("app/key" + std::to_string(i));
  Rng rng(1);
  TimeMicros t = 0;
  TTKV ttkv;
  for (auto _ : state) {
    t += kMicrosPerSecond;
    ttkv.record_write(keys[rng.next_below(num_keys)], Value(static_cast<int64_t>(t)), t);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_TtkvRecordWrite)->Arg(100)->Arg(10000);

void BM_TtkvValueAt(benchmark::State& state) {
  TTKV ttkv;
  const int versions = static_cast<int>(state.range(0));
  for (int i = 0; i < versions; ++i) {
    ttkv.record_write("key", Value(static_cast<int64_t>(i)), i * kMicrosPerSecond);
  }
  Rng rng(2);
  for (auto _ : state) {
    const TimeMicros t = static_cast<TimeMicros>(rng.next_below(versions)) * kMicrosPerSecond;
    benchmark::DoNotOptimize(ttkv.value_at("key", t));
  }
}
BENCHMARK(BM_TtkvValueAt)->Arg(16)->Arg(1024);

void BM_TtkvSerializeRoundTrip(benchmark::State& state) {
  TTKV ttkv;
  Rng rng(3);
  for (int k = 0; k < 200; ++k) {
    const std::string key = "app/key" + std::to_string(k);
    for (int v = 0; v < 20; ++v) {
      ttkv.record_write(key, Value("value" + std::to_string(v)), (k * 20 + v) * kMicrosPerSecond);
    }
  }
  for (auto _ : state) {
    const std::string bytes = ttkv.Serialize();
    benchmark::DoNotOptimize(TTKV::Deserialize(bytes));
    state.SetBytesProcessed(state.bytes_processed() + static_cast<int64_t>(bytes.size()));
  }
}
BENCHMARK(BM_TtkvSerializeRoundTrip);

// ----- Parsers ---------------------------------------------------------------

ConfigMap SampleConfig(size_t n) {
  ConfigMap map;
  for (size_t i = 0; i < n; ++i) {
    // Single top-level segment so the XML codec (one root) handles it too.
    const std::string base =
        "config/section" + std::to_string(i % 10) + "/key" + std::to_string(i);
    switch (i % 4) {
      case 0: map[base] = Value(true); break;
      case 1: map[base] = Value(static_cast<int64_t>(i)); break;
      case 2: map[base] = Value("value " + std::to_string(i)); break;
      default: map[base] = Value(std::vector<std::string>{"a", "b", "c"}); break;
    }
  }
  return map;
}

void BM_CodecRoundTrip(benchmark::State& state) {
  const auto format = static_cast<ConfigFormat>(state.range(0));
  const FormatCodec& codec = CodecFor(format);
  // INI cannot represent lists; restrict to scalar-friendly content.
  ConfigMap map = SampleConfig(200);
  if (format == ConfigFormat::kIni || format == ConfigFormat::kPlainText) {
    for (auto& [key, value] : map) {
      if (value.type() == ValueType::kStringList) value = Value("flattened");
    }
  }
  const std::string text = codec.Serialize(map);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.Parse(text));
    state.SetBytesProcessed(state.bytes_processed() + static_cast<int64_t>(text.size()));
  }
  state.SetLabel(FormatName(format));
}
BENCHMARK(BM_CodecRoundTrip)
    ->Arg(static_cast<int>(ConfigFormat::kIni))
    ->Arg(static_cast<int>(ConfigFormat::kPlainText))
    ->Arg(static_cast<int>(ConfigFormat::kJson))
    ->Arg(static_cast<int>(ConfigFormat::kXml))
    ->Arg(static_cast<int>(ConfigFormat::kPskv));

// ----- Clustering -------------------------------------------------------------

std::vector<WriteEvent> SyntheticWrites(size_t num_keys, size_t num_groups) {
  Rng rng(7);
  std::vector<WriteEvent> events;
  TimeMicros t = 0;
  for (size_t g = 0; g < num_groups; ++g) {
    t += Seconds(30);
    const uint32_t base = static_cast<uint32_t>(rng.next_below(num_keys));
    const size_t size = 1 + rng.next_below(5);
    for (size_t i = 0; i < size; ++i) {
      events.push_back({t + static_cast<TimeMicros>(i) * Seconds(0.1),
                        static_cast<uint32_t>((base + i) % num_keys), false});
    }
  }
  return events;
}

void BM_WindowGrouping(benchmark::State& state) {
  const auto events = SyntheticWrites(500, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(GroupWrites(events, Seconds(1)));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(events.size()));
}
BENCHMARK(BM_WindowGrouping)->Arg(1000)->Arg(10000);

void BM_CorrelationAndHac(benchmark::State& state) {
  const size_t num_keys = static_cast<size_t>(state.range(0));
  const auto events = SyntheticWrites(num_keys, num_keys * 4);
  const auto groups = GroupWrites(events, Seconds(1));
  for (auto _ : state) {
    const CorrelationResult corr = ComputeCorrelations(groups, num_keys);
    PairTable distances;
    for (const auto& [pair, value] : corr.correlation.raw()) {
      distances.Set(static_cast<uint32_t>(pair >> 32), static_cast<uint32_t>(pair & 0xffffffffu),
                    1.0 / value);
    }
    std::vector<uint32_t> ids;
    for (uint32_t i = 0; i < num_keys; ++i) {
      if (corr.group_counts[i] > 0) ids.push_back(i);
    }
    benchmark::DoNotOptimize(
        AgglomerativeCluster(ids, distances, Linkage::kComplete, 0.5));
  }
}
BENCHMARK(BM_CorrelationAndHac)->Arg(100)->Arg(750);

}  // namespace
}  // namespace ocasta

BENCHMARK_MAIN();
