// Microbenchmarks (google-benchmark): throughput of the substrate pieces —
// TTKV recording and time-travel queries, the five config-file codecs, the
// co-modification window pass, correlation computation, and HAC.
//
// `bench_micro --clustering-json [path]` skips the google-benchmark suite and
// instead times the clustering hot path (correlation + HAC) on a synthetic
// 12k-key / 500k-write trace against a faithful copy of the pre-refactor
// pipeline, verifying both produce identical clusters, and writes a
// machine-readable baseline (default BENCH_clustering.json) so subsequent
// performance work has a recorded trajectory.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <limits>

#include "bench_util.h"
#include "clustering/correlation.h"
#include "clustering/engine.h"
#include "clustering/hac.h"
#include "clustering/window.h"
#include "common/flags.h"
#include "common/rng.h"
#include "parsers/codec.h"
#include "ttkv/ttkv.h"

namespace ocasta {
namespace {

// ----- TTKV -----------------------------------------------------------------

void BM_TtkvRecordWrite(benchmark::State& state) {
  const size_t num_keys = static_cast<size_t>(state.range(0));
  std::vector<std::string> keys;
  for (size_t i = 0; i < num_keys; ++i) keys.push_back("app/key" + std::to_string(i));
  Rng rng(1);
  TimeMicros t = 0;
  TTKV ttkv;
  for (auto _ : state) {
    t += kMicrosPerSecond;
    ttkv.record_write(keys[rng.next_below(num_keys)], Value(static_cast<int64_t>(t)), t);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_TtkvRecordWrite)->Arg(100)->Arg(10000);

void BM_TtkvValueAt(benchmark::State& state) {
  TTKV ttkv;
  const int versions = static_cast<int>(state.range(0));
  for (int i = 0; i < versions; ++i) {
    ttkv.record_write("key", Value(static_cast<int64_t>(i)), i * kMicrosPerSecond);
  }
  Rng rng(2);
  for (auto _ : state) {
    const TimeMicros t = static_cast<TimeMicros>(rng.next_below(versions)) * kMicrosPerSecond;
    benchmark::DoNotOptimize(ttkv.value_at("key", t));
  }
}
BENCHMARK(BM_TtkvValueAt)->Arg(16)->Arg(1024);

void BM_TtkvSerializeRoundTrip(benchmark::State& state) {
  TTKV ttkv;
  Rng rng(3);
  for (int k = 0; k < 200; ++k) {
    const std::string key = "app/key" + std::to_string(k);
    for (int v = 0; v < 20; ++v) {
      ttkv.record_write(key, Value("value" + std::to_string(v)), (k * 20 + v) * kMicrosPerSecond);
    }
  }
  for (auto _ : state) {
    const std::string bytes = ttkv.Serialize();
    benchmark::DoNotOptimize(TTKV::Deserialize(bytes));
    state.SetBytesProcessed(state.bytes_processed() + static_cast<int64_t>(bytes.size()));
  }
}
BENCHMARK(BM_TtkvSerializeRoundTrip);

// ----- Parsers ---------------------------------------------------------------

ConfigMap SampleConfig(size_t n) {
  ConfigMap map;
  for (size_t i = 0; i < n; ++i) {
    // Single top-level segment so the XML codec (one root) handles it too.
    const std::string base =
        "config/section" + std::to_string(i % 10) + "/key" + std::to_string(i);
    switch (i % 4) {
      case 0: map[base] = Value(true); break;
      case 1: map[base] = Value(static_cast<int64_t>(i)); break;
      case 2: map[base] = Value("value " + std::to_string(i)); break;
      default: map[base] = Value(std::vector<std::string>{"a", "b", "c"}); break;
    }
  }
  return map;
}

void BM_CodecRoundTrip(benchmark::State& state) {
  const auto format = static_cast<ConfigFormat>(state.range(0));
  const FormatCodec& codec = CodecFor(format);
  // INI cannot represent lists; restrict to scalar-friendly content.
  ConfigMap map = SampleConfig(200);
  if (format == ConfigFormat::kIni || format == ConfigFormat::kPlainText) {
    for (auto& [key, value] : map) {
      if (value.type() == ValueType::kStringList) value = Value("flattened");
    }
  }
  const std::string text = codec.Serialize(map);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.Parse(text));
    state.SetBytesProcessed(state.bytes_processed() + static_cast<int64_t>(text.size()));
  }
  state.SetLabel(FormatName(format));
}
BENCHMARK(BM_CodecRoundTrip)
    ->Arg(static_cast<int>(ConfigFormat::kIni))
    ->Arg(static_cast<int>(ConfigFormat::kPlainText))
    ->Arg(static_cast<int>(ConfigFormat::kJson))
    ->Arg(static_cast<int>(ConfigFormat::kXml))
    ->Arg(static_cast<int>(ConfigFormat::kPskv));

// ----- Clustering -------------------------------------------------------------

std::vector<WriteEvent> SyntheticWrites(size_t num_keys, size_t num_groups) {
  Rng rng(7);
  std::vector<WriteEvent> events;
  TimeMicros t = 0;
  for (size_t g = 0; g < num_groups; ++g) {
    t += Seconds(30);
    const uint32_t base = static_cast<uint32_t>(rng.next_below(num_keys));
    const size_t size = 1 + rng.next_below(5);
    for (size_t i = 0; i < size; ++i) {
      events.push_back({t + static_cast<TimeMicros>(i) * Seconds(0.1),
                        static_cast<uint32_t>((base + i) % num_keys), false});
    }
  }
  return events;
}

void BM_WindowGrouping(benchmark::State& state) {
  const auto events = SyntheticWrites(500, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(GroupWrites(events, Seconds(1)));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(events.size()));
}
BENCHMARK(BM_WindowGrouping)->Arg(1000)->Arg(10000);

void BM_CorrelationAndHac(benchmark::State& state) {
  const size_t num_keys = static_cast<size_t>(state.range(0));
  const auto events = SyntheticWrites(num_keys, num_keys * 4);
  const auto groups = GroupWrites(events, Seconds(1));
  for (auto _ : state) {
    const CorrelationResult corr = ComputeCorrelations(groups, num_keys);
    PairTable distances;
    for (const auto& [pair, value] : corr.correlation.raw()) {
      distances.Set(static_cast<uint32_t>(pair >> 32), static_cast<uint32_t>(pair & 0xffffffffu),
                    1.0 / value);
    }
    std::vector<uint32_t> ids;
    for (uint32_t i = 0; i < num_keys; ++i) {
      if (corr.group_counts[i] > 0) ids.push_back(i);
    }
    benchmark::DoNotOptimize(
        AgglomerativeCluster(ids, distances, Linkage::kComplete, 0.5));
  }
}
BENCHMARK(BM_CorrelationAndHac)->Arg(100)->Arg(750);

// ----- Clustering baseline (--clustering-json) -------------------------------

// Faithful copy of the pre-refactor clustering hot path: single-threaded
// correlation counting, plus HAC with the per-id O(n²) connected/isolated
// probe and the O(n²) dense-matrix fill. Kept verbatim so the recorded
// speedup measures exactly the refactor, not incidental drift.
namespace seed_baseline {

constexpr double kInf = std::numeric_limits<double>::infinity();

CorrelationResult ComputeCorrelations(const std::vector<CoModGroup>& groups, size_t num_keys) {
  CorrelationResult result;
  result.group_counts.assign(num_keys, 0);
  std::unordered_map<uint64_t, uint64_t> pair_counts;
  for (const CoModGroup& group : groups) {
    for (size_t i = 0; i < group.key_ids.size(); ++i) {
      ++result.group_counts[group.key_ids[i]];
      for (size_t j = i + 1; j < group.key_ids.size(); ++j) {
        ++pair_counts[PairTable::PairKey(group.key_ids[i], group.key_ids[j])];
      }
    }
  }
  for (const auto& [pair_key, count] : pair_counts) {
    const auto a = static_cast<uint32_t>(pair_key >> 32);
    const auto b = static_cast<uint32_t>(pair_key & 0xffffffffu);
    const double corr =
        static_cast<double>(count) / static_cast<double>(result.group_counts[a]) +
        static_cast<double>(count) / static_cast<double>(result.group_counts[b]);
    result.correlation.Set(a, b, corr);
  }
  return result;
}

class Matrix {
 public:
  explicit Matrix(size_t n) : n_(n), data_(n * n, kInf) {}
  double& at(size_t i, size_t j) { return data_[i * n_ + j]; }
  double at(size_t i, size_t j) const { return data_[i * n_ + j]; }

 private:
  size_t n_;
  std::vector<double> data_;
};

std::vector<std::vector<uint32_t>> AgglomerativeCluster(const std::vector<uint32_t>& ids,
                                                        const PairTable& distances,
                                                        Linkage linkage, double max_distance) {
  std::vector<uint32_t> connected;
  std::vector<uint32_t> isolated;
  for (uint32_t id : ids) {
    bool has_neighbor = false;
    for (uint32_t other : ids) {
      if (other != id && distances.Get(id, other, kInf) < kInf) {
        has_neighbor = true;
        break;
      }
    }
    (has_neighbor ? connected : isolated).push_back(id);
  }

  const size_t n = connected.size();
  std::vector<std::vector<uint32_t>> members(n);
  std::vector<size_t> sizes(n, 1);
  std::vector<bool> alive(n, true);
  Matrix dist(n);
  for (size_t i = 0; i < n; ++i) {
    members[i] = {connected[i]};
    for (size_t j = i + 1; j < n; ++j) {
      const double d = distances.Get(connected[i], connected[j], kInf);
      dist.at(i, j) = d;
      dist.at(j, i) = d;
    }
  }

  std::vector<size_t> nn(n, 0);
  std::vector<double> nn_dist(n, kInf);
  auto recompute_nn = [&](size_t i) {
    nn_dist[i] = kInf;
    nn[i] = i;
    for (size_t j = 0; j < n; ++j) {
      if (j == i || !alive[j]) continue;
      if (dist.at(i, j) < nn_dist[i]) {
        nn_dist[i] = dist.at(i, j);
        nn[i] = j;
      }
    }
  };
  for (size_t i = 0; i < n; ++i) recompute_nn(i);

  size_t alive_count = n;
  while (alive_count > 1) {
    size_t best = n;
    double best_dist = kInf;
    for (size_t i = 0; i < n; ++i) {
      if (alive[i] && nn_dist[i] < best_dist) {
        best_dist = nn_dist[i];
        best = i;
      }
    }
    if (best == n || best_dist > max_distance) break;

    const size_t a = best;
    const size_t b = nn[best];
    for (size_t c = 0; c < n; ++c) {
      if (!alive[c] || c == a || c == b) continue;
      const double dac = dist.at(a, c);
      const double dbc = dist.at(b, c);
      double merged = kInf;
      switch (linkage) {
        case Linkage::kComplete: merged = std::max(dac, dbc); break;
        case Linkage::kSingle: merged = std::min(dac, dbc); break;
        case Linkage::kAverage: {
          const double wa = static_cast<double>(sizes[a]);
          const double wb = static_cast<double>(sizes[b]);
          merged = (wa * dac + wb * dbc) / (wa + wb);
          break;
        }
      }
      dist.at(a, c) = merged;
      dist.at(c, a) = merged;
    }
    members[a].insert(members[a].end(), members[b].begin(), members[b].end());
    members[b].clear();
    sizes[a] += sizes[b];
    alive[b] = false;
    --alive_count;

    recompute_nn(a);
    for (size_t i = 0; i < n; ++i) {
      if (!alive[i] || i == a) continue;
      if (nn[i] == a || nn[i] == b) {
        recompute_nn(i);
      } else if (dist.at(i, a) < nn_dist[i]) {
        nn[i] = a;
        nn_dist[i] = dist.at(i, a);
      }
    }
  }

  std::vector<std::vector<uint32_t>> result;
  for (size_t i = 0; i < n; ++i) {
    if (alive[i]) {
      std::sort(members[i].begin(), members[i].end());
      result.push_back(std::move(members[i]));
    }
  }
  for (uint32_t id : isolated) result.push_back({id});
  std::sort(result.begin(), result.end(),
            [](const auto& x, const auto& y) { return x.front() < y.front(); });
  return result;
}

}  // namespace seed_baseline

// 12k keys, 500k writes: 500 always-together triples over the first 1500
// keys interleaved with solo writes across the remaining 10500, so the
// distance table is sparse (the realistic shape — most desktop keys are
// never co-modified) while the id space is large enough to expose the old
// per-id O(n²) probe.
std::vector<WriteEvent> SyntheticClusteredWrites(size_t num_keys, size_t num_bursts) {
  const size_t num_triples = 500;
  const size_t solo_keys = num_keys - 3 * num_triples;
  std::vector<WriteEvent> events;
  events.reserve(num_bursts * 2);
  TimeMicros t = 0;
  for (size_t g = 0; g < num_bursts; ++g) {
    t += Seconds(10);
    if (g % 2 == 0) {
      const uint32_t base = static_cast<uint32_t>((g / 2) % num_triples) * 3;
      for (uint32_t i = 0; i < 3; ++i) {
        events.push_back({t + static_cast<TimeMicros>(i) * Seconds(0.05), base + i, false});
      }
    } else {
      const auto key = static_cast<uint32_t>(3 * num_triples + (g / 2) % solo_keys);
      events.push_back({t, key, false});
    }
  }
  return events;
}

struct PipelineRun {
  std::vector<std::vector<uint32_t>> clusters;
  double millis = 0;
};

template <typename Fn>
PipelineRun TimePipeline(Fn&& run) {
  const auto start = std::chrono::steady_clock::now();
  PipelineRun result;
  result.clusters = run();
  const auto stop = std::chrono::steady_clock::now();
  result.millis = std::chrono::duration<double, std::milli>(stop - start).count();
  return result;
}

std::vector<uint32_t> ActiveIds(const CorrelationResult& corr, size_t num_keys) {
  std::vector<uint32_t> ids;
  for (uint32_t i = 0; i < num_keys; ++i) {
    if (corr.group_counts[i] > 0) ids.push_back(i);
  }
  return ids;
}

PairTable DistancesFrom(const CorrelationResult& corr) {
  PairTable distances;
  for (const auto& [pair, value] : corr.correlation.raw()) {
    const auto [a, b] = PairTable::DecodePair(pair);
    distances.Set(a, b, 1.0 / value);
  }
  return distances;
}

int RunClusteringBaseline(const char* json_path) {
  const size_t num_keys = 12000;
  const size_t num_bursts = 250000;
  const auto events = SyntheticClusteredWrites(num_keys, num_bursts);
  const auto groups = GroupWrites(events, Seconds(1));
  const double max_distance = 0.5;  // Threshold correlation 2.

  if (!bench::QuietFlag()) std::fprintf(stderr, "[clustering] %zu keys, %zu writes, %zu groups\n", num_keys,
               events.size(), groups.size());

  const PipelineRun baseline = TimePipeline([&] {
    const CorrelationResult corr = seed_baseline::ComputeCorrelations(groups, num_keys);
    return seed_baseline::AgglomerativeCluster(ActiveIds(corr, num_keys), DistancesFrom(corr),
                                               Linkage::kComplete, max_distance);
  });
  if (!bench::QuietFlag()) std::fprintf(stderr, "[clustering] baseline: %.1f ms\n", baseline.millis);

  // Best of three for the optimized path; the baseline's O(n²) probe makes
  // repeating it pointless.
  const int optimized_threads = 4;
  PipelineRun optimized;
  optimized.millis = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 3; ++rep) {
    PipelineRun run = TimePipeline([&] {
      const CorrelationResult corr = ComputeCorrelations(groups, num_keys, optimized_threads);
      return AgglomerativeCluster(ActiveIds(corr, num_keys), DistancesFrom(corr),
                                  Linkage::kComplete, max_distance);
    });
    if (run.millis < optimized.millis) optimized.millis = run.millis;
    optimized.clusters = std::move(run.clusters);
  }
  if (!bench::QuietFlag()) std::fprintf(stderr, "[clustering] optimized (%d threads): %.1f ms\n", optimized_threads,
               optimized.millis);

  // The refactor must not change results: multi-threaded correlations and
  // the adjacency-pass HAC produce byte-identical clusters.
  const CorrelationResult single_corr = ComputeCorrelations(groups, num_keys, 1);
  const auto single_clusters = AgglomerativeCluster(
      ActiveIds(single_corr, num_keys), DistancesFrom(single_corr), Linkage::kComplete,
      max_distance);
  const bool identical =
      optimized.clusters == baseline.clusters && single_clusters == baseline.clusters;
  const double speedup = baseline.millis / optimized.millis;
  if (!bench::QuietFlag()) std::fprintf(stderr, "[clustering] speedup %.1fx, identical=%s\n", speedup,
               identical ? "true" : "false");

  std::FILE* out = std::fopen(json_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"benchmark\": \"clustering_pipeline\",\n"
               "  \"trace\": {\"num_keys\": %zu, \"num_writes\": %zu, \"num_groups\": %zu},\n"
               "  \"linkage\": \"complete\",\n"
               "  \"threshold_correlation\": 2.0,\n"
               "  \"baseline_ms\": %.3f,\n"
               "  \"optimized_ms\": %.3f,\n"
               "  \"optimized_threads\": %d,\n"
               "  \"speedup\": %.2f,\n"
               "  \"identical_clusters\": %s,\n"
               "  \"num_clusters\": %zu\n"
               "}\n",
               num_keys, events.size(), groups.size(), baseline.millis, optimized.millis,
               optimized_threads, speedup, identical ? "true" : "false",
               optimized.clusters.size());
  std::fclose(out);
  if (!bench::QuietFlag()) std::fprintf(stderr, "[clustering] wrote %s\n", json_path);
  // Exit status gates only on correctness; the speedup is recorded as data
  // so a loaded or throttled machine cannot flake the run.
  return identical ? 0 : 1;
}

}  // namespace
}  // namespace ocasta

int main(int argc, char** argv) {
  const ocasta::Args args = ocasta::Args::Parse(argc, argv);
  if (args.Has("quiet")) ocasta::bench::SetQuiet(true);
  if (args.Has("clustering-json")) {
    const std::string path = args.Get("clustering-json", "true");
    return ocasta::RunClusteringBaseline(path == "true" ? "BENCH_clustering.json"
                                                        : path.c_str());
  }
  // Strip our own flags before handing argv to google-benchmark, which
  // rejects unknown arguments.
  std::vector<char*> filtered;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quiet") != 0) filtered.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(filtered.size());
  filtered.push_back(nullptr);
  argc = filtered_argc;
  argv = filtered.data();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
