// Shared helpers for the bench harness binaries.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/strings.h"
#include "common/table.h"
#include "workload/generator.h"
#include "workload/profiles.h"

namespace ocasta::bench {

// Progress chatter gate. JSON-emitting runs (bench_loadgen, bench_micro
// --clustering-json, any bench under --quiet) silence the "[gen] ..."
// stderr noise so machine-readable output stays clean. Also settable via
// the OCASTA_BENCH_QUIET environment variable for the table benches.
inline bool& QuietFlag() {
  static bool quiet = std::getenv("OCASTA_BENCH_QUIET") != nullptr;
  return quiet;
}
inline void SetQuiet(bool quiet) { QuietFlag() = quiet; }

// Generates all nine Table I machines once (deterministic seeds).
inline const std::vector<MachineTrace>& AllMachines() {
  static const std::vector<MachineTrace> machines = [] {
    std::vector<MachineTrace> out;
    for (const MachineProfile& profile : Table1Profiles()) {
      if (!QuietFlag()) std::fprintf(stderr, "[gen] %s...\n", profile.name.c_str());
      out.push_back(GenerateMachineTrace(profile));
    }
    return out;
  }();
  return machines;
}

inline const MachineTrace& MachineByName(const std::string& name) {
  for (const MachineTrace& machine : AllMachines()) {
    if (machine.profile.name == name) return machine;
  }
  throw Error("unknown machine: " + name);
}

// Machines hosting an application, in Table I order (per-user aggregation).
inline std::vector<const MachineTrace*> MachinesHosting(const std::string& app) {
  std::vector<const MachineTrace*> hosts;
  for (const MachineTrace& machine : AllMachines()) {
    for (const std::string& hosted : machine.profile.apps) {
      if (hosted == app) {
        hosts.push_back(&machine);
        break;
      }
    }
  }
  return hosts;
}

// "6.76M" / "67.72K" rendering used by Table I.
inline std::string HumanCount(uint64_t n) {
  if (n >= 1'000'000) return StrFormat("%.2fM", static_cast<double>(n) / 1e6);
  if (n >= 1'000) return StrFormat("%.2fK", static_cast<double>(n) / 1e3);
  return std::to_string(n);
}

inline std::string HumanBytes(size_t n) {
  if (n >= 1'000'000) return StrFormat("%.1fMB", static_cast<double>(n) / 1e6);
  if (n >= 1'000) return StrFormat("%.1fKB", static_cast<double>(n) / 1e3);
  return std::to_string(n) + "B";
}

}  // namespace ocasta::bench
