// Reproduces Table II: applications and the accuracy of their identified
// clusters, plus the Section VI-A oversized/undersized breakdown.
//
// Paper reference (multi/total clusters, accuracy):
//   MS Outlook 33/82 97.0% | Evolution 18/65 38.9% | IE 9/12 66.7%
//   Chrome 1/34 100% | MS Word 18/110 100% | GNOME Edit 1/7 0.0%
//   MS Paint 2/8 50.0% | Eye of GNOME 0/5 N/A | Acrobat 120/550 95.8%
//   Explorer 32/91 84.4% | WMP 21/41 90.5% | overall 88.6% (72.3% mean)
//
// Clusters come from each application's per-user aggregated TTKV (window
// 1 s, correlation threshold 2, complete linkage), judged against schema
// ground truth.
#include <cstdio>

#include "analysis/ground_truth.h"
#include "apps/catalog.h"
#include "bench_util.h"
#include "common/flags.h"
#include "clustering/engine.h"

using namespace ocasta;
using namespace ocasta::bench;

int main(int argc, char** argv) {
  if (ocasta::Args::Parse(argc, argv).Has("quiet")) ocasta::bench::SetQuiet(true);
  TextTable table({"Application", "#Keys", "#Clusters", "%Accuracy", "Oversized", "Undersized"});
  size_t total_keys = 0;
  size_t total_multi = 0;
  size_t total_all = 0;
  size_t total_correct = 0;
  double accuracy_sum = 0;
  size_t accuracy_apps = 0;

  for (const AppSchema& schema : AllAppSchemas()) {
    const auto hosts = MachinesHosting(schema.name);
    if (hosts.empty()) continue;
    const TTKV ttkv = BuildAppTtkvAcrossMachines(hosts, schema.name);
    const ClusterSet clusters = ClusterKeys(ttkv, ClusteringParams{});
    const GroundTruth truth = GroundTruth::FromSchema(schema);
    const AccuracyReport report = EvaluateClusters(schema.name, clusters, ttkv, truth);

    table.add_row({report.app, std::to_string(report.keys_accessed),
                   StrFormat("%zu/%zu", report.multi_clusters, report.total_clusters),
                   report.multi_clusters == 0 ? "N/A"
                                              : StrFormat("%.1f%%", 100.0 * report.accuracy()),
                   std::to_string(report.oversized), std::to_string(report.undersized)});
    total_keys += report.keys_accessed;
    total_multi += report.multi_clusters;
    total_all += report.total_clusters;
    total_correct += report.correct_multi;
    if (report.multi_clusters > 0) {
      accuracy_sum += report.accuracy();
      ++accuracy_apps;
    }
  }

  const double overall =
      total_multi == 0 ? 0.0 : 100.0 * static_cast<double>(total_correct) /
                                   static_cast<double>(total_multi);
  table.add_row({"Total", std::to_string(total_keys),
                 StrFormat("%zu/%zu", total_multi, total_all), StrFormat("%.1f%%", overall), "",
                 ""});

  std::printf("Table II: Applications and their clusters identified by Ocasta\n");
  std::printf("(window 1s, correlation threshold 2, complete linkage)\n\n%s\n",
              table.render().c_str());
  std::printf("Overall accuracy (total correct / total multi-key): %.1f%%  [paper: 88.6%%]\n",
              overall);
  std::printf("Mean per-application accuracy:                      %.1f%%  [paper: 72.3%%]\n",
              100.0 * accuracy_sum / static_cast<double>(accuracy_apps));

  // Section VI-A: the 1-second timestamp granularity is the dominant
  // oversized-cluster cause — compare against a hypothetical finer trace
  // (window 0 => only identical timestamps cluster; our simulated traces
  // quantise to 1 s just like the paper's infrastructure).
  size_t oversized_1s = 0;
  size_t oversized_0s = 0;
  for (const AppSchema& schema : AllAppSchemas()) {
    const auto hosts = MachinesHosting(schema.name);
    if (hosts.empty()) continue;
    const TTKV ttkv = BuildAppTtkvAcrossMachines(hosts, schema.name);
    const GroundTruth truth = GroundTruth::FromSchema(schema);
    ClusteringParams params;
    const AccuracyReport at_1s =
        EvaluateClusters(schema.name, ClusterKeys(ttkv, params), ttkv, truth);
    params.window_seconds = 0.0;
    const AccuracyReport at_0s =
        EvaluateClusters(schema.name, ClusterKeys(ttkv, params), ttkv, truth);
    oversized_1s += at_1s.oversized;
    oversized_0s += at_0s.oversized;
  }
  std::printf("\nSection VI-A: oversized clusters at 1s window: %zu; at 0s window: %zu\n",
              oversized_1s, oversized_0s);
  std::printf("(the paper attributes most oversized clusters to the 1-second\n"
              " timestamp granularity of its trace collection)\n");

  // Robustness: the headline accuracy must not be a single-seed artifact.
  // Regenerate every machine with shifted seeds and recompute the overall
  // number.
  std::printf("\nSeed robustness (overall accuracy under re-generated usage):\n");
  for (uint64_t seed_shift : {101u, 202u, 303u}) {
    std::vector<MachineTrace> machines;
    for (MachineProfile profile : Table1Profiles()) {
      profile.seed += seed_shift;
      machines.push_back(GenerateMachineTrace(profile));
    }
    size_t multi = 0;
    size_t correct = 0;
    for (const AppSchema& schema : AllAppSchemas()) {
      std::vector<const MachineTrace*> hosts;
      for (const MachineTrace& machine : machines) {
        for (const std::string& hosted : machine.profile.apps) {
          if (hosted == schema.name) {
            hosts.push_back(&machine);
            break;
          }
        }
      }
      if (hosts.empty()) continue;
      const TTKV ttkv = BuildAppTtkvAcrossMachines(hosts, schema.name);
      const AccuracyReport report = EvaluateClusters(
          schema.name, ClusterKeys(ttkv, ClusteringParams{}), ttkv,
          GroundTruth::FromSchema(schema));
      multi += report.multi_clusters;
      correct += report.correct_multi;
    }
    std::printf("  seed+%llu: %.1f%% (%zu/%zu)\n",
                static_cast<unsigned long long>(seed_shift),
                100.0 * static_cast<double>(correct) / static_cast<double>(multi), correct,
                multi);
  }
  return 0;
}
