// Reproduces Figure 3: sensitivity of average cluster size to the window
// size and the clustering threshold.
//
// Paper shapes: a sharp drop from 1 s to 0 s window (the 1-second
// timestamp granularity artifact); otherwise the average multi-key cluster
// size stays within roughly 3.5-4.5 across window sizes up to 600 s and
// thresholds 0.5-2.
#include <cstdio>

#include "apps/catalog.h"
#include "bench_util.h"
#include "common/flags.h"
#include "clustering/engine.h"

using namespace ocasta;
using namespace ocasta::bench;

namespace {

// Pooled average multi-cluster size across all 11 applications.
double PooledAverageSize(const ClusteringParams& params) {
  size_t total_keys = 0;
  size_t total_clusters = 0;
  for (const AppSchema& schema : AllAppSchemas()) {
    const auto hosts = MachinesHosting(schema.name);
    if (hosts.empty()) continue;
    const TTKV ttkv = BuildAppTtkvAcrossMachines(hosts, schema.name);
    const ClusterSet clusters = ClusterKeys(ttkv, params);
    for (const KeyCluster& cluster : clusters.clusters()) {
      if (cluster.size() > 1) {
        ++total_clusters;
        total_keys += cluster.size();
      }
    }
  }
  return total_clusters == 0 ? 0.0
                             : static_cast<double>(total_keys) / static_cast<double>(total_clusters);
}

}  // namespace

int main(int argc, char** argv) {
  if (ocasta::Args::Parse(argc, argv).Has("quiet")) ocasta::bench::SetQuiet(true);
  {
    SeriesChart chart("WindowSeconds", {"AvgClusterSize"});
    for (double window : {0.0, 1.0, 2.0, 5.0, 15.0, 30.0, 60.0, 120.0, 300.0, 600.0}) {
      ClusteringParams params;
      params.window_seconds = window;
      chart.add_point(window, {PooledAverageSize(params)});
    }
    std::printf("Figure 3a: average cluster size vs clustering window size\n"
                "(threshold 2; note the sharp drop at 0 s — sub-second bursts split\n"
                " when only identical 1s-quantised timestamps count as 'together')\n\n%s\n",
                chart.render().c_str());
  }
  {
    SeriesChart chart("Threshold", {"AvgClusterSize"});
    for (double threshold : {0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0}) {
      ClusteringParams params;
      params.threshold_correlation = threshold;
      chart.add_point(threshold, {PooledAverageSize(params)});
    }
    std::printf("Figure 3b: average cluster size vs clustering threshold (window 1 s)\n\n%s",
                chart.render().c_str());
  }
  return 0;
}
