// Reproduces Table IV: Ocasta recovery performance on the 16 errors.
//
// For each error: average cluster size, trials to find the offending
// cluster (DFS), time to find vs time to search everything, unique
// screenshots, and whether Ocasta / Ocasta-NoClust fixed it. The paper's
// headline shapes:
//   - Ocasta fixes all 16 (errors #2 and #4 only after tuning the
//     threshold/window, as in Section VI-B);
//   - NoClust fails the 5 errors needing multi-key rollback (2,4,6,7,9);
//   - the cluster-count sort finds the offending cluster well before the
//     full search completes (~78% faster in the paper).
#include <cstdio>

#include "bench_util.h"
#include "common/flags.h"
#include "scenarios/harness.h"

using namespace ocasta;
using namespace ocasta::bench;

int main(int argc, char** argv) {
  if (ocasta::Args::Parse(argc, argv).Has("quiet")) ocasta::bench::SetQuiet(true);
  TextTable table({"Case", "Cl.Size", "Trials", "Time(find/all)", "Screens", "Ocasta", "NoClust",
                   "Params"});
  double saved_ratio_sum = 0;
  size_t fixed_count = 0;
  size_t noclust_fixed = 0;
  double screens_sum = 0;

  for (const ErrorScenario& scenario : AllScenarios()) {
    const MachineTrace& machine = MachineByName(scenario.machine);

    ScenarioRunOptions options;
    ScenarioRun run = RunScenario(machine, scenario, options);
    std::string params_note = "default";
    if (!run.ocasta.fixed && scenario.needs_tuning) {
      // The paper's remediation: lower the threshold (and widen the window
      // for error #2) until the offending settings cluster together.
      options.use_tuned_params = true;
      run = RunScenario(machine, scenario, options);
      params_note = StrFormat("tuned t=%.0f w=%.0fs", scenario.tuned_threshold,
                              scenario.tuned_window_seconds);
    }

    table.add_row(
        {std::to_string(scenario.id), std::to_string(run.offending_cluster_size),
         std::to_string(run.ocasta.trials_to_fix),
         StrFormat("%s/%s", FormatMinSec(run.ocasta.time_to_fix).c_str(),
                   FormatMinSec(run.ocasta.total_time).c_str()),
         std::to_string(run.ocasta.unique_screenshots), run.ocasta.fixed ? "Y" : "N",
         run.noclust.fixed ? "Y" : "N", params_note});

    if (run.ocasta.fixed) {
      ++fixed_count;
      screens_sum += static_cast<double>(run.ocasta.unique_screenshots);
      if (run.ocasta.total_time > 0) {
        saved_ratio_sum += 1.0 - static_cast<double>(run.ocasta.time_to_fix) /
                                     static_cast<double>(run.ocasta.total_time);
      }
    }
    if (run.noclust.fixed) ++noclust_fixed;
  }

  std::printf("Table IV: Ocasta recovery performance (DFS, injection 14 days before trace end)\n\n%s\n",
              table.render().c_str());
  std::printf("Ocasta fixed %zu/16 errors (paper: 16/16, two after tuning)\n", fixed_count);
  std::printf("NoClust fixed %zu/16 errors (paper: 11/16 — fails 2,4,6,7,9)\n", noclust_fixed);
  std::printf("Cluster sort found the offending cluster %.0f%% faster than searching all\n"
              "clusters on average (paper: 78%%)\n",
              100.0 * saved_ratio_sum / static_cast<double>(fixed_count));
  std::printf("Average screenshots the user examines: %.1f (paper: ~3, worst case 11)\n",
              screens_sum / static_cast<double>(fixed_count));
  return 0;
}
