// Reproduces Figure 2: DFS vs BFS search behaviour.
//
//   (a) average trials-to-fix vs how many days in the past the error was
//       injected (paper: both rise with injection age; DFS better overall);
//   (b) average trials-to-fix vs number of spurious user fix-attempt
//       writes after the error (paper: BFS is highly sensitive — every
//       extra historical value costs a full pass over all clusters);
//   (c) average total trials vs the user's start-time bound (paper:
//       roughly linear growth with the searched time span).
//
// Averages run over the 16 Table III errors (errors #2/#4 use their tuned
// parameters so a fix exists, as in the paper's Table IV runs).
#include <cstdio>

#include "analysis/stats.h"
#include "bench_util.h"
#include "common/flags.h"
#include "scenarios/harness.h"

using namespace ocasta;
using namespace ocasta::bench;

namespace {

ScenarioRun RunOne(const ErrorScenario& scenario, ScenarioRunOptions options) {
  options.use_tuned_params = scenario.needs_tuning;
  return RunScenario(MachineByName(scenario.machine), scenario, options);
}

double AvgTrialsToFix(SearchStrategy strategy, double injection_days, int spurious) {
  std::vector<double> trials;
  for (const ErrorScenario& scenario : AllScenarios()) {
    ScenarioRunOptions options;
    options.strategy = strategy;
    options.injection_days_before_end = injection_days;
    options.spurious_writes = spurious;
    const ScenarioRun run = RunOne(scenario, options);
    if (run.ocasta.fixed) trials.push_back(static_cast<double>(run.ocasta.trials_to_fix));
  }
  return Mean(trials);
}

double AvgTotalTrials(SearchStrategy strategy, double bound_days) {
  std::vector<double> trials;
  for (const ErrorScenario& scenario : AllScenarios()) {
    const MachineTrace& machine = MachineByName(scenario.machine);
    ScenarioRunOptions options;
    options.strategy = strategy;
    // Injection stays at 14 days; the start bound sweeps further back
    // (clamped to the machine's trace length).
    const double max_days = static_cast<double>(machine.profile.days) - 1.0;
    options.start_days_before_end = std::min(bound_days, max_days);
    options.use_tuned_params = scenario.needs_tuning;
    const ScenarioRun run = RunScenario(machine, scenario, options);
    trials.push_back(static_cast<double>(run.ocasta.total_trials));
  }
  return Mean(trials);
}

}  // namespace

int main(int argc, char** argv) {
  if (ocasta::Args::Parse(argc, argv).Has("quiet")) ocasta::bench::SetQuiet(true);
  {
    SeriesChart chart("InjectionDays", {"BFS", "DFS"});
    for (double days : {1.0, 2.0, 4.0, 7.0, 10.0, 14.0}) {
      chart.add_point(days, {AvgTrialsToFix(SearchStrategy::kBfs, days, 0),
                             AvgTrialsToFix(SearchStrategy::kDfs, days, 0)});
    }
    std::printf("Figure 2a: average trials-to-fix by time of error injection\n\n%s\n",
                chart.render().c_str());
  }
  {
    SeriesChart chart("SpuriousWrites", {"BFS", "DFS"});
    for (int spurious : {0, 1, 2}) {
      chart.add_point(spurious, {AvgTrialsToFix(SearchStrategy::kBfs, 14.0, spurious),
                                 AvgTrialsToFix(SearchStrategy::kDfs, 14.0, spurious)});
    }
    std::printf("Figure 2b: average trials-to-fix by number of spurious writes\n"
                "(paper: BFS is highly sensitive; DFS grows by ~1 per write)\n\n%s\n",
                chart.render().c_str());
  }
  {
    SeriesChart chart("TimeBoundDays", {"BFS", "DFS"});
    for (double bound : {7.0, 14.0, 21.0, 28.0, 42.0, 56.0, 70.0, 80.0}) {
      chart.add_point(bound, {AvgTotalTrials(SearchStrategy::kBfs, bound),
                              AvgTotalTrials(SearchStrategy::kDfs, bound)});
    }
    std::printf("Figure 2c: average total trials by search time bound\n"
                "(paper: roughly linear in the searched span)\n\n%s",
                chart.render().c_str());
  }
  return 0;
}
