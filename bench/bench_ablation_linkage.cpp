// Ablation: linkage criterion (DESIGN.md §4).
//
// The paper uses the maximum (complete) linkage criterion, citing prior
// work that found it superior for software clustering. This bench swaps in
// single and average linkage on identical histories and compares Table II
// accuracy. Expected: single linkage chains unrelated keys through shared
// co-modification windows (more oversized clusters); complete linkage is
// the most conservative.
#include <cstdio>

#include "analysis/ground_truth.h"
#include "apps/catalog.h"
#include "bench_util.h"
#include "common/flags.h"
#include "clustering/engine.h"

using namespace ocasta;
using namespace ocasta::bench;

int main(int argc, char** argv) {
  if (ocasta::Args::Parse(argc, argv).Has("quiet")) ocasta::bench::SetQuiet(true);
  TextTable table(
      {"Threshold", "Linkage", "Multi clusters", "Correct", "Oversized", "Overall accuracy"});
  // At threshold 2, "always modified together" is transitive, so all three
  // linkages agree by construction — an interesting property of the
  // correlation metric. Differences appear once the threshold admits
  // mostly-together pairs: single linkage chains unrelated groups through
  // shared windows, complete linkage stays conservative.
  for (double threshold : {2.0, 1.5, 1.0}) {
    for (Linkage linkage : {Linkage::kComplete, Linkage::kSingle, Linkage::kAverage}) {
      size_t multi = 0;
      size_t correct = 0;
      size_t oversized = 0;
      for (const AppSchema& schema : AllAppSchemas()) {
        const auto hosts = MachinesHosting(schema.name);
        if (hosts.empty()) continue;
        const TTKV ttkv = BuildAppTtkvAcrossMachines(hosts, schema.name);
        ClusteringParams params;
        params.linkage = linkage;
        params.threshold_correlation = threshold;
        const AccuracyReport report = EvaluateClusters(
            schema.name, ClusterKeys(ttkv, params), ttkv, GroundTruth::FromSchema(schema));
        multi += report.multi_clusters;
        correct += report.correct_multi;
        oversized += report.oversized;
      }
      table.add_row({StrFormat("%.1f", threshold), LinkageName(linkage), std::to_string(multi),
                     std::to_string(correct), std::to_string(oversized),
                     StrFormat("%.1f%%", multi == 0 ? 0.0
                                                    : 100.0 * static_cast<double>(correct) /
                                                          static_cast<double>(multi))});
    }
  }
  std::printf("Ablation: linkage criterion x threshold (window 1 s)\n\n%s", table.render().c_str());
  return 0;
}
